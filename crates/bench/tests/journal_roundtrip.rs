//! Journal resilience round-trip: write a manifest, damage it the way
//! real campaigns get damaged (truncation at an arbitrary byte — a
//! kill mid-append — or a flipped bit — media rot), then reopen.
//!
//! The contract under test:
//!
//! * a damaged line surfaces as a typed [`spp_bench::JournalError`]
//!   and its cell recomputes — it is *never* silently served back;
//! * every intact line replays its payload byte-identically;
//! * re-appending the recomputed cells yields a journal from which a
//!   subsequent open replays *everything* byte-identically, torn tail
//!   or not (the open seals an unterminated final line so later
//!   appends cannot merge into it).

use proptest::prelude::*;
use spp_bench::journal::{CellStatus, Entry};
use spp_bench::Journal;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static CASE: AtomicU64 = AtomicU64::new(0);

fn tmp(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "spp-journal-roundtrip-{}-{tag}-{}.jsonl",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    p
}

/// Synthetic cheap cells with awkward payload bytes (escapes, quotes,
/// multi-byte characters) and a mix of statuses and attempt counts.
fn cells(n: usize) -> Vec<Entry> {
    (0..n)
        .map(|i| Entry {
            key: format!("roundtrip/cell/{i}"),
            attempt: 1 + (i as u32 % 3),
            status: if i % 5 == 4 {
                CellStatus::Failed
            } else {
                CellStatus::Ok
            },
            payload: format!("{{\"v\":{i},\"s\":\"x\\\"y{}\"}}", "π".repeat(i % 3)),
        })
        .collect()
}

fn write_journal(p: &PathBuf, entries: &[Entry]) {
    let _ = std::fs::remove_file(p);
    let j = Journal::open(p).expect("fresh journal opens");
    for e in entries {
        j.append(e).expect("append");
    }
}

proptest! {
    // Each case is cheap (a handful of tiny lines), so a generous
    // case count still finishes instantly.
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn truncation_at_any_byte_is_detected_and_recomputes_byte_identically(
        n in 2usize..7,
        cut_raw in 0usize..10_000,
    ) {
        let p = tmp("cut");
        let entries = cells(n);
        write_journal(&p, &entries);
        let full = std::fs::read(&p).expect("read back");
        let cut = cut_raw % (full.len() + 1);
        std::fs::write(&p, &full[..cut]).expect("truncate");

        // Whole lines before the cut stay; a partial tail is damage.
        let intact = full[..cut].iter().filter(|&&b| b == b'\n').count();
        let has_partial = cut > 0 && full[cut - 1] != b'\n';

        let j = Journal::open(&p).expect("damaged journal still opens");
        prop_assert_eq!(j.len(), intact);
        prop_assert_eq!(!j.corrupt().is_empty(), has_partial,
            "a torn tail must surface as a typed error: {:?}", j.corrupt());
        for (i, e) in entries.iter().enumerate() {
            match j.lookup(&e.key) {
                Some(got) => {
                    prop_assert!(i < intact);
                    prop_assert_eq!(&got.payload, &e.payload, "payload must replay byte-identically");
                    prop_assert_eq!(got.attempt, e.attempt);
                    prop_assert_eq!(got.status, e.status);
                }
                None => prop_assert!(i >= intact, "intact cell {i} vanished"),
            }
        }

        // Recompute the lost cells, exactly as the supervisor does.
        for e in entries.iter().skip(intact) {
            j.append(e).expect("recompute append");
        }
        drop(j);

        // A later resume replays every cell byte-identically; the torn
        // fragment (if any) stays confined to its own corrupt line.
        let j = Journal::open(&p).expect("repaired journal opens");
        prop_assert_eq!(j.corrupt().len(), usize::from(has_partial));
        for e in &entries {
            let got = j.lookup(&e.key).expect("every cell replays after repair");
            prop_assert_eq!(&got.payload, &e.payload);
            prop_assert_eq!((got.attempt, got.status), (e.attempt, e.status));
        }
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn bit_flip_anywhere_never_serves_a_wrong_payload(
        n in 2usize..7,
        pos_raw in 0usize..10_000,
        bit in 0u8..8,
    ) {
        let p = tmp("flip");
        let entries = cells(n);
        write_journal(&p, &entries);
        let full = std::fs::read(&p).expect("read back");
        let pos = pos_raw % full.len();
        let mut damaged = full.clone();
        damaged[pos] ^= 1 << bit;
        // A no-op flip cannot happen (xor of a nonzero mask), but a
        // flipped newline merges two lines — still damage, still
        // required to be detected rather than served.
        std::fs::write(&p, &damaged).expect("damage");

        let j = Journal::open(&p).expect("damaged journal still opens");
        let mut missing = 0usize;
        for e in &entries {
            match j.lookup(&e.key) {
                Some(got) => {
                    prop_assert_eq!(&got.payload, &e.payload,
                        "flip at byte {} bit {} served a wrong payload", pos, bit);
                    prop_assert_eq!((got.attempt, got.status), (e.attempt, e.status));
                }
                None => missing += 1,
            }
        }
        prop_assert!(missing >= 1, "one flipped bit must damage at least one entry");
        prop_assert!(!j.corrupt().is_empty(),
            "missing cells must be explained by typed errors");
        let _ = std::fs::remove_file(&p);
    }
}
