//! Witness-shrinking contract: the minimized `(crash_idx, seed)` pair
//! the fuzzer reports must itself reproduce an oracle failure on a
//! freshly recorded bundle, and nothing lexicographically smaller may
//! fail — otherwise the "minimal witness" in the JSON report would be
//! either stale or not minimal.

use proptest::prelude::*;
use spp_bench::crashfuzz::{fuzz_bundle_spec, minimal_witness};
use spp_bench::Experiment;
use spp_pmem::{FlushMode, Variant};
use spp_workloads::oracle::record_bundle;
use spp_workloads::BenchId;

fn bench_ids() -> impl Strategy<Value = BenchId> {
    prop::sample::select(BenchId::ALL.to_vec())
}

fn unsafe_variants() -> impl Strategy<Value = Variant> {
    prop::sample::select(vec![Variant::Log, Variant::LogP])
}

fn flush_modes() -> impl Strategy<Value = FlushMode> {
    prop::sample::select(FlushMode::ALL.to_vec())
}

proptest! {
    // Each case records a bundle and scans for a witness; keep the
    // count modest so the suite stays in CI budget.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn minimized_witness_reproduces_the_failure(
        id in bench_ids(),
        variant in unsafe_variants(),
        mode in flush_modes(),
        seed in 0u64..1000,
    ) {
        let exp = Experiment { scale: 2400, seed };
        let spec = fuzz_bundle_spec(id, variant, mode, &exp);
        let bundle = record_bundle(&spec);
        let seeds = 2;
        let Some((w, _)) = minimal_witness(&bundle, bundle.events().len(), seeds) else {
            // An unsafe build surviving every schedule would be the
            // very regression the fuzzer exists to catch.
            return Err(TestCaseError::fail(format!(
                "{id} {variant} {mode}: no witness in an unsafe build"
            )));
        };

        // Reproduction: the reported pair still fails on a fresh,
        // independently recorded bundle of the same spec.
        let fresh = record_bundle(&spec);
        let v = fresh.check_crash(w.crash_idx, w.seed);
        prop_assert!(v.is_err(), "{id} {variant} {mode}: witness ({}, {}) no longer fails",
            w.crash_idx, w.seed);
        prop_assert_eq!(&v.unwrap_err().kind, &w.kind, "violation kind must be stable");

        // Minimality: every lexicographically smaller pair recovers.
        for idx in 0..=w.crash_idx {
            for s in 0..seeds {
                if idx == w.crash_idx && s >= w.seed {
                    break;
                }
                prop_assert!(
                    fresh.check_crash(idx, s).is_ok(),
                    "{id} {variant} {mode}: ({idx}, {s}) fails below witness ({}, {})",
                    w.crash_idx, w.seed
                );
            }
        }
    }
}
