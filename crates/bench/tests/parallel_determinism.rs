//! The harness's central contract: parallelism and caching change wall
//! time only, never a single number.
//!
//! * A parallel suite run is bit-identical to a serial one (every
//!   counter of every `SimResult`, compared via exhaustive `Debug`
//!   formatting) across multiple seeds.
//! * A cached trace replayed under two simulator configurations equals
//!   two fresh recordings simulated under the same configurations.
//! * Rendered reports — the bytes `repro` prints — are identical at
//!   any job count.

use spp_bench::{report, BenchRun, Experiment, Harness, TraceKey};
use spp_cpu::{CpuConfig, SimResult, Simulator};
use spp_pmem::{Event, Variant};
use spp_workloads::{record_trace, BenchId};

fn simulate(events: &[Event], cfg: &CpuConfig) -> SimResult {
    Simulator::new(events)
        .config(*cfg)
        .run()
        .expect("cached traces must simulate cleanly")
}

fn tiny(seed: u64) -> Experiment {
    Experiment { scale: 5000, seed }
}

/// Exhaustive field-by-field comparison via the derived `Debug`
/// representation (covers cycles, every stall counter, cache and
/// memory-controller stats, SSB/bloom/checkpoint/BLT counters).
fn assert_runs_identical(serial: &[BenchRun], parallel: &[BenchRun], seed: u64) {
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(parallel) {
        assert_eq!(s.id, p.id);
        for (name, a, b) in [
            ("base", format!("{:?}", s.base), format!("{:?}", p.base)),
            ("log", format!("{:?}", s.log), format!("{:?}", p.log)),
            ("logp", format!("{:?}", s.logp), format!("{:?}", p.logp)),
            (
                "logpsf",
                format!("{:?}", s.logpsf),
                format!("{:?}", p.logpsf),
            ),
            ("sp256", format!("{:?}", s.sp256), format!("{:?}", p.sp256)),
        ] {
            assert_eq!(
                a, b,
                "seed {seed}, {}/{name}: parallel diverged from serial",
                s.id
            );
        }
    }
}

#[test]
fn parallel_suite_is_bit_identical_to_serial_across_seeds() {
    for seed in [1u64, 0x5EED] {
        let serial = Harness::new(tiny(seed), 1).run_suite();
        let parallel = Harness::new(tiny(seed), 8).run_suite();
        assert_runs_identical(&serial, &parallel, seed);
    }
}

#[test]
fn cached_trace_replay_equals_fresh_recordings() {
    let exp = tiny(7);
    let h = Harness::new(exp, 4);
    let key = TraceKey::new(BenchId::BTree, Variant::LogPSf, &exp);

    // One cached recording, replayed under two configurations...
    let cached = h.trace(key);
    let on_base = simulate(&cached.events, &CpuConfig::baseline());
    let on_sp = simulate(&cached.events, &CpuConfig::with_sp());

    // ...must equal two entirely fresh recordings of the same spec.
    for (cfg, cached_sim) in [
        (CpuConfig::baseline(), on_base),
        (CpuConfig::with_sp(), on_sp),
    ] {
        let fresh = record_trace(&key.trace_spec());
        assert_eq!(
            &fresh.events[..],
            &cached.events[..],
            "recording is not a pure function"
        );
        let fresh_sim = simulate(&fresh.events, &cfg);
        assert_eq!(
            format!("{cached_sim:?}"),
            format!("{fresh_sim:?}"),
            "cached replay diverged from a fresh recording"
        );
    }

    let s = h.cache_stats();
    assert_eq!(
        s.recordings, 1,
        "the harness must have recorded exactly once: {s:?}"
    );
}

#[test]
fn rendered_reports_are_byte_identical_at_any_job_count() {
    let exp = tiny(3);
    let serial = Harness::new(exp, 1);
    let parallel = Harness::new(exp, 8);
    assert_eq!(report::fig13(&serial), report::fig13(&parallel));
    assert_eq!(report::ablation(&serial), report::ablation(&parallel));
    assert_eq!(report::flushmode(&serial), report::flushmode(&parallel));
    assert_eq!(report::multicore(&serial), report::multicore(&parallel));
    assert_eq!(report::incremental(&serial), report::incremental(&parallel));
}
