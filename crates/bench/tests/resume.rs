//! End-to-end kill-and-resume determinism for `repro faultsim`.
//!
//! The resumability contract: a journaled run that is SIGKILLed
//! mid-campaign and then resumed with `--resume` must print stdout
//! byte-identical to an uninterrupted run of the same command. The
//! journal only changes *where* results come from (replay vs
//! recompute), never *what* is reported.

use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const SCALE: &str = "2400";
const SEED: &str = "7";

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "spp-resume-test-{}-{name}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&p);
    p
}

#[test]
fn killed_then_resumed_run_matches_uninterrupted_stdout() {
    // Uninterrupted reference: no journal at all.
    let reference = repro()
        .args(["faultsim", "--scale", SCALE, "--seed", SEED, "--jobs", "2"])
        .output()
        .expect("reference run");
    assert!(
        reference.status.success(),
        "reference must pass: {}",
        String::from_utf8_lossy(&reference.stderr)
    );

    // Journaled run, killed as soon as the manifest shows progress.
    let journal = tmp("kill");
    let mut child = repro()
        .args([
            "faultsim",
            "--scale",
            SCALE,
            "--seed",
            SEED,
            "--jobs",
            "2",
            "--journal",
        ])
        .arg(&journal)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn journaled run");
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut finished = false;
    loop {
        let progressed = std::fs::metadata(&journal)
            .map(|m| m.len() > 0)
            .unwrap_or(false);
        if progressed {
            break;
        }
        if child.try_wait().expect("try_wait").is_some() {
            finished = true;
            break;
        }
        assert!(Instant::now() < deadline, "journal never made progress");
        std::thread::sleep(Duration::from_millis(5));
    }
    if !finished {
        // SIGKILL: no destructors, no flush — the harshest interrupt,
        // possibly tearing the line being appended right now.
        child.kill().expect("kill journaled run");
        let _ = child.wait();
    }

    // Resume against the interrupted (possibly torn) manifest.
    let resumed = repro()
        .args([
            "faultsim",
            "--scale",
            SCALE,
            "--seed",
            SEED,
            "--jobs",
            "2",
            "--journal",
        ])
        .arg(&journal)
        .arg("--resume")
        .output()
        .expect("resumed run");
    assert!(
        resumed.status.success(),
        "resumed run must pass: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&resumed.stdout),
        String::from_utf8_lossy(&reference.stdout),
        "resumed stdout must be byte-identical to the uninterrupted run"
    );
    // Replay diagnostics live on stderr only, keeping stdout pure.
    let stderr = String::from_utf8_lossy(&resumed.stderr);
    assert!(
        stderr.contains("cells replayed"),
        "resume must report replayed cells on stderr: {stderr}"
    );
    std::fs::remove_file(&journal).expect("cleanup");
}

#[test]
fn second_resume_replays_every_cell_byte_identically() {
    // A completed journal resumed again: everything replays, stdout is
    // still byte-identical, and the journal grows by nothing.
    let journal = tmp("full");
    let first = repro()
        .args([
            "faultsim",
            "--scale",
            SCALE,
            "--seed",
            SEED,
            "--jobs",
            "1",
            "--journal",
        ])
        .arg(&journal)
        .output()
        .expect("first journaled run");
    assert!(first.status.success());
    let len_after_first = std::fs::metadata(&journal).expect("journal exists").len();

    let second = repro()
        .args([
            "faultsim",
            "--scale",
            SCALE,
            "--seed",
            SEED,
            "--jobs",
            "4",
            "--journal",
        ])
        .arg(&journal)
        .arg("--resume")
        .output()
        .expect("second run");
    assert!(second.status.success());
    assert_eq!(
        String::from_utf8_lossy(&second.stdout),
        String::from_utf8_lossy(&first.stdout),
        "full replay at a different job count must not change stdout"
    );
    assert_eq!(
        std::fs::metadata(&journal).expect("journal exists").len(),
        len_after_first,
        "a fully replayed run must append nothing"
    );
    std::fs::remove_file(&journal).expect("cleanup");
}
