//! Property-based safety gate for the persist-path trace optimizer.
//!
//! Two layers of evidence that [`spp_bench::optimize::analyze`] never
//! proposes an unsafe elision:
//!
//! * randomized persist programs — stores, all three flush flavors,
//!   both fences, and `pcommit` in arbitrary order — where the
//!   *reachable crash-image state set* of the optimized trace must
//!   equal the original's at every persist boundary (exhaustively, via
//!   `CrashSim::for_each_image`), and no flush the model marks
//!   required may appear in the elision plan;
//! * the Px86 litmus catalog — every curated and generated program,
//!   every interleaving, every flush mode: the optimized trace's
//!   reachable states must stay inside the reference model's
//!   per-crash-point allowed sets and the program's allowed-state
//!   envelope (`spp_litmus::allowed_union`).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::collections::{BTreeSet, HashSet};

use proptest::prelude::*;
use spp_bench::optimize::{analyze, apply, plan_preserves_guarantees, ElisionPlan};
use spp_litmus::{allowed_states, allowed_union, catalog, generate, LitmusProgram, ModelKnob};
use spp_pmem::{persist_boundaries, CrashSim, Event, FlushMode, PAddr, Space};

/// One op of a tiny random persist program over a few cachelines.
#[derive(Debug, Clone, Copy)]
enum Op {
    Store(u8),
    Clwb(u8),
    ClflushOpt(u8),
    Clflush(u8),
    Sfence,
    Mfence,
    Pcommit,
}

fn addr(loc: u8) -> PAddr {
    LitmusProgram::addr_of(loc)
}

fn op_strategy(locs: u8) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..locs).prop_map(Op::Store),
        (0..locs).prop_map(Op::Store),
        (0..locs).prop_map(Op::Clwb),
        (0..locs).prop_map(Op::Clwb),
        (0..locs).prop_map(Op::ClflushOpt),
        (0..locs).prop_map(Op::Clflush),
        Just(Op::Sfence),
        Just(Op::Sfence),
        Just(Op::Mfence),
        Just(Op::Pcommit),
        Just(Op::Pcommit),
    ]
}

/// Materializes ops as events; store values are distinct so a crash
/// image pins down exactly which store survived.
fn events_of(ops: &[Op]) -> Vec<Event> {
    let mut val = 0u64;
    ops.iter()
        .map(|op| match *op {
            Op::Store(l) => {
                val += 1;
                Event::Store {
                    addr: addr(l),
                    size: 8,
                    value: val,
                }
            }
            Op::Clwb(l) => Event::Clwb { addr: addr(l) },
            Op::ClflushOpt(l) => Event::ClflushOpt { addr: addr(l) },
            Op::Clflush(l) => Event::Clflush { addr: addr(l) },
            Op::Sfence => Event::Sfence,
            Op::Mfence => Event::Mfence,
            Op::Pcommit => Event::Pcommit,
        })
        .collect()
}

/// Every state vector any crash image at crash point `c` can show.
fn reachable_at(events: &[Event], c: usize, locs: u8) -> BTreeSet<Vec<u64>> {
    let base = Space::new();
    let sim = CrashSim::new(&base, events, c);
    let mut out = BTreeSet::new();
    sim.for_each_image(|img| {
        out.insert((0..locs).map(|l| img.read_u64(addr(l))).collect());
    });
    out
}

/// Maps each index of `events` to its position in the optimized trace
/// (the count of retained events before it).
fn index_map(events: &[Event], plan: &ElisionPlan) -> Vec<usize> {
    let elide: HashSet<usize> = plan.elisions.iter().map(|e| e.idx).collect();
    let mut prefix = vec![0usize; events.len() + 1];
    for i in 0..events.len() {
        prefix[i + 1] = prefix[i] + usize::from(!elide.contains(&i));
    }
    prefix
}

/// The shared core of both layers: the plan must be internally
/// consistent, pass the event-level lemma, and leave the reachable
/// crash-state set untouched at every given boundary of the original.
fn assert_plan_is_safe(events: &[Event], boundaries: &[usize], locs: u8) {
    let plan = analyze(events);
    let elided: HashSet<usize> = plan.elisions.iter().map(|e| e.idx).collect();
    for &r in &plan.required {
        assert!(
            !elided.contains(&r),
            "required flush {r} appears in the elision plan"
        );
    }
    assert!(
        plan_preserves_guarantees(events, &plan),
        "plan moved a guarantee frontier: {plan:?}"
    );
    let optimized = apply(events, &plan);
    let prefix = index_map(events, &plan);
    for &c in boundaries {
        assert_eq!(
            reachable_at(events, c, locs),
            reachable_at(&optimized, prefix[c], locs),
            "reachable crash states diverged at boundary {c} -> {}",
            prefix[c]
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Randomized programs: the optimizer must be invisible to every
    /// crash image at every persist boundary.
    #[test]
    fn no_elision_changes_any_reachable_crash_state(
        ops in prop::collection::vec(op_strategy(2), 0..18)
    ) {
        let events = events_of(&ops);
        let boundaries = persist_boundaries(&events);
        assert_plan_is_safe(&events, &boundaries, 2);
    }

    /// Removing any *required* flush instead must be visible to the
    /// event-level lemma (the teeth behind the property above).
    #[test]
    fn eliding_a_required_flush_is_always_detected(
        ops in prop::collection::vec(op_strategy(2), 1..18),
        pick in any::<prop::sample::Index>(),
    ) {
        let events = events_of(&ops);
        let plan = analyze(&events);
        if plan.required.is_empty() {
            // Nothing load-bearing in this draw; vacuous case.
            return Ok(());
        }
        let victim = plan.required[pick.index(plan.required.len())];
        let mut unsafe_plan = plan.clone();
        unsafe_plan.elisions.push(spp_bench::optimize::Elision {
            idx: victim,
            kind: spp_bench::optimize::ElisionKind::DuplicateFlush,
        });
        unsafe_plan.elisions.sort_unstable_by_key(|e| e.idx);
        prop_assert!(
            !plan_preserves_guarantees(&events, &unsafe_plan),
            "eliding required flush {victim} went unnoticed"
        );
    }
}

/// The litmus cross-check: optimized traces of every catalog and
/// generated program, under every flush mode and interleaving, must
/// stay inside the Px86 reference model's allowed sets — both the
/// per-crash-point sets (checked at the mapped boundary) and the
/// program's whole envelope.
#[test]
fn optimized_litmus_traces_stay_inside_the_px86_envelope() {
    let mut programs = catalog();
    programs.extend(generate(0xA11CE, 8));
    for prog in &programs {
        let locs = prog.num_locs() as u8;
        for mode in FlushMode::ALL {
            let envelope = allowed_union(prog, mode, ModelKnob::Honest);
            for il in prog.interleavings() {
                let events = prog.materialize(&il, mode);
                // Layer 1: the general safety property on this trace.
                assert_plan_is_safe(&events, &persist_boundaries(&events), locs);
                // Layer 2: the model's own allowed sets. `materialize`
                // emits one event per op, so op boundaries are event
                // boundaries.
                let allowed = allowed_states(prog, &il, mode, ModelKnob::Honest);
                let plan = analyze(&events);
                let optimized = apply(&events, &plan);
                let prefix = index_map(&events, &plan);
                for (c, allowed_here) in allowed.iter().enumerate() {
                    let states = reachable_at(&optimized, prefix[c], locs);
                    assert!(
                        states.is_subset(allowed_here),
                        "{}: optimized trace reaches a state Px86 forbids \
                         at crash point {c} (mode {mode:?})",
                        prog.name
                    );
                    assert!(
                        states.iter().all(|s| envelope.contains(s)),
                        "{}: optimized trace escapes the allowed envelope",
                        prog.name
                    );
                }
            }
        }
    }
}
