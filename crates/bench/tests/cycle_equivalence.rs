//! The full-grid half of the cycle-equivalence gate.
//!
//! The event-driven skip-ahead core (`spp_cpu::Pipeline`) replaced the
//! original cycle-by-cycle stepper for speed; the old stepper survives
//! frozen as `spp_cpu::ReferencePipeline` behind the
//! `reference-stepper` feature precisely so this test can hold the new
//! core to it. Every Table 1 benchmark x build-variant trace — the
//! actual workload traces the evaluation replays, not synthetic ones —
//! must produce an *identical* `SimResult` on both steppers: total
//! cycles, every stall counter, crash verdicts, everything. Both cores
//! are swept (baseline and SP256), fault-free and under the `quiet`
//! and `storm` injection plans, because the skip-ahead scheduler's
//! wake-time arithmetic is exactly the thing a fault-induced latency
//! spike would expose.
//!
//! The in-crate property tests (`spp-cpu`'s `reference` module) cover
//! adversarial random traces and rollback corners; this grid covers
//! the shapes the paper's numbers actually rest on. A failure here
//! means a reported figure changed meaning — it is a release blocker,
//! not a flake: everything is deterministic.

use spp_bench::{Experiment, TraceKey};
use spp_cpu::{CpuConfig, Pipeline, ReferencePipeline};
use spp_mem::FaultSpec;
use spp_pmem::Variant;
use spp_workloads::BenchId;

/// One small-scale experiment shared by the whole grid: large enough
/// that every trace exercises flushes, pcommits, and fences; small
/// enough that 7 x 4 x 2 cores x 3 plans x 2 steppers stays in test
/// budget.
const EXP: Experiment = Experiment {
    scale: 400,
    seed: 0x5EED,
};

/// Runs both steppers on one trace/config and asserts exact
/// `SimResult` equality (or, on failure, the same error kind).
fn assert_equivalent(ctx: &str, events: &[spp_pmem::Event], cfg: CpuConfig) {
    let fast = Pipeline::new(events, cfg).try_run();
    let slow = ReferencePipeline::new(events, cfg).try_run();
    match (fast, slow) {
        (Ok(f), Ok(s)) => assert_eq!(f, s, "SimResult diverged: {ctx}"),
        (Err(f), Err(s)) => assert_eq!(f.kind, s.kind, "error kind diverged: {ctx}"),
        (f, s) => panic!(
            "verdict diverged: {ctx}: fast={:?} reference={:?}",
            f.map(|r| r.cpu.cycles),
            s.map(|r| r.cpu.cycles)
        ),
    }
}

/// The fault legs swept per cell: fault-free, then both named plans.
fn fault_legs(seed: u64) -> [(&'static str, Option<FaultSpec>); 3] {
    [
        ("clean", None),
        ("quiet", Some(FaultSpec::quiet(seed))),
        ("storm", Some(FaultSpec::storm(seed))),
    ]
}

#[test]
fn every_bench_variant_trace_matches_the_reference_stepper() {
    let harness = spp_bench::Harness::new(EXP, 1);
    for id in BenchId::ALL {
        for variant in Variant::ALL {
            let trace = harness.trace(TraceKey::new(id, variant, &EXP));
            for (core, sp) in [("baseline", false), ("sp256", true)] {
                for (leg, fault) in fault_legs(EXP.seed) {
                    let mut cfg = if sp {
                        CpuConfig::with_sp()
                    } else {
                        CpuConfig::baseline()
                    };
                    cfg.mem.fault = fault;
                    let ctx = format!("{}/{}/{}/{}", id.abbrev(), variant, core, leg);
                    assert_equivalent(&ctx, &trace.events, cfg);
                }
            }
        }
    }
}
