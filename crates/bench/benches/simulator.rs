//! Criterion benchmarks of end-to-end simulation throughput: trace
//! generation plus pipeline replay for each Table 1 benchmark (tiny
//! sizing), and the baseline-vs-SP replay of a persist-barrier stream.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use spp_bench::{run_variant, Experiment};
use spp_cpu::{CpuConfig, SimResult, Simulator};
use spp_pmem::{Event, PAddr, Variant};
use spp_workloads::BenchId;

fn simulate(events: &[Event], cfg: &CpuConfig) -> SimResult {
    Simulator::new(events)
        .config(*cfg)
        .run()
        .expect("bench traces must simulate cleanly")
}

fn barrier_trace(n: u64) -> Vec<Event> {
    let mut ev = Vec::new();
    for i in 0..n {
        let a = PAddr::new(4096 + i * 64);
        ev.push(Event::Store {
            addr: a,
            size: 8,
            value: i,
        });
        ev.push(Event::Clwb { addr: a });
        ev.push(Event::Sfence);
        ev.push(Event::Pcommit);
        ev.push(Event::Sfence);
        ev.push(Event::Compute(200));
    }
    ev
}

fn bench_pipeline_replay(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    let trace = barrier_trace(200);
    g.bench_function("barriers_baseline", |b| {
        b.iter(|| black_box(simulate(&trace, &CpuConfig::baseline()).cpu.cycles))
    });
    g.bench_function("barriers_sp256", |b| {
        b.iter(|| black_box(simulate(&trace, &CpuConfig::with_sp()).cpu.cycles))
    });
    g.finish();
}

fn bench_full_runs(c: &mut Criterion) {
    let mut g = c.benchmark_group("bench_run");
    g.sample_size(10);
    let exp = Experiment {
        scale: 5000,
        seed: 7,
    };
    for id in BenchId::ALL {
        g.bench_with_input(BenchmarkId::new("logpsf_sp", id.abbrev()), &id, |b, &id| {
            b.iter(|| {
                let (_, sim) = run_variant(id, Variant::LogPSf, &exp, &CpuConfig::with_sp());
                black_box(sim.cpu.cycles)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pipeline_replay, bench_full_runs);
criterion_main!(benches);
