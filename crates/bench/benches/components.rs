//! Criterion micro-benchmarks of the speculative-persistence hardware
//! structures and the memory-system model (simulator throughput, not
//! paper results — those come from the `repro` binary).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use spp_core::{BloomFilter, Blt, CheckpointBuffer, EpochManager, Ssb, SsbConfig, SsbEntry, SsbOp};
use spp_mem::{AccessKind, MemConfig, MemCtrl, MemorySystem};
use spp_pmem::{BlockId, PAddr};

fn bench_ssb(c: &mut Criterion) {
    let mut g = c.benchmark_group("ssb");
    g.bench_function("push_drain_256", |b| {
        b.iter(|| {
            let mut ssb = Ssb::new(SsbConfig::paper_default());
            for i in 0..256u64 {
                ssb.push(SsbEntry {
                    op: SsbOp::Store {
                        addr: PAddr::new(i * 8),
                    },
                    epoch: 0,
                    trace_idx: i as usize,
                })
                .unwrap();
            }
            black_box(ssb.drain_epoch(0).len())
        })
    });
    g.bench_function("forwards_miss", |b| {
        let mut ssb = Ssb::new(SsbConfig::paper_default());
        for i in 0..256u64 {
            ssb.push(SsbEntry {
                op: SsbOp::Store {
                    addr: PAddr::new(i * 8),
                },
                epoch: 0,
                trace_idx: i as usize,
            })
            .unwrap();
        }
        b.iter(|| black_box(ssb.forwards(PAddr::new(0x0DEA_D000))))
    });
    g.finish();
}

fn bench_bloom(c: &mut Criterion) {
    let mut g = c.benchmark_group("bloom");
    g.bench_function("insert_query", |b| {
        let mut bf = BloomFilter::paper_default();
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(8);
            bf.insert(PAddr::new(i));
            black_box(bf.query(PAddr::new(i)))
        })
    });
    g.finish();
}

fn bench_checkpoints_and_epochs(c: &mut Criterion) {
    c.bench_function("epoch_begin_commit", |b| {
        b.iter(|| {
            let mut em = EpochManager::new(4);
            for i in 0..4 {
                em.begin(i, i as u64).unwrap();
            }
            while em.speculating() {
                black_box(em.commit_oldest());
            }
        })
    });
    c.bench_function("checkpoint_take_release", |b| {
        let mut cb = CheckpointBuffer::new(4);
        b.iter(|| {
            let cp = cb.take(0, 0).unwrap();
            black_box(cp);
            cb.release_oldest();
        })
    });
    c.bench_function("blt_record_snoop", |b| {
        let mut blt = Blt::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            blt.record(BlockId::new(i % 512));
            black_box(blt.snoop(BlockId::new(i % 1024)))
        })
    });
}

fn bench_memory_system(c: &mut Criterion) {
    let mut g = c.benchmark_group("mem");
    g.bench_function("l1_hit", |b| {
        let mut m = MemorySystem::new(MemConfig::paper());
        m.access(0, BlockId::new(1), AccessKind::Load);
        let mut t = 100u64;
        b.iter(|| {
            t += 4;
            black_box(m.access(t, BlockId::new(1), AccessKind::Load))
        })
    });
    g.bench_function("miss_fill", |b| {
        let mut m = MemorySystem::new(MemConfig::paper());
        let mut blk = 0u64;
        let mut t = 0u64;
        b.iter(|| {
            blk += 1;
            t += 200;
            black_box(m.access(t, BlockId::new(blk), AccessKind::Store))
        })
    });
    g.bench_function("flush_pcommit", |b| {
        let mut mc = MemCtrl::try_new(MemConfig::paper()).unwrap();
        let mut t = 0u64;
        b.iter(|| {
            t += 400;
            mc.write_back(t);
            black_box(mc.pcommit(t + 50))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_ssb,
    bench_bloom,
    bench_checkpoints_and_epochs,
    bench_memory_system
);
criterion_main!(benches);
