//! The built-in consumer: stall attribution, latency/occupancy
//! distributions, and Chrome trace spans — everything `repro profile`
//! reports.

use std::cell::RefCell;
use std::rc::Rc;

use crate::chrome::{chrome_trace_json, TraceSpan};
use crate::probe::{Probe, ProbeEvent, StallCause};
use crate::reservoir::Reservoir;
use crate::Cycle;

/// Retained samples per distribution.
const RESERVOIR_CAP: usize = 4096;
/// Retained Chrome spans before the exporter starts dropping (keeps
/// worst-case memory bounded on long runs; drops are counted).
const SPAN_CAP: usize = 200_000;

/// Retirement-stall cycles attributed per cause. The four buckets
/// partition exactly the pipeline's stall counters, so their total
/// equals the machine's total stall cycles by construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallProfile {
    /// Cycles stalled at a persist barrier.
    pub fence: Cycle,
    /// Cycles stalled because the SSB was full.
    pub ssb_full: Cycle,
    /// Cycles stalled because no checkpoint was free.
    pub checkpoint_full: Cycle,
    /// Backend/memory stall cycles.
    pub backend: Cycle,
}

impl StallProfile {
    /// Total attributed stall cycles.
    pub fn total(&self) -> Cycle {
        self.fence + self.ssb_full + self.checkpoint_full + self.backend
    }

    /// The bucket for `cause`, by value.
    pub fn get(&self, cause: StallCause) -> Cycle {
        match cause {
            StallCause::Fence => self.fence,
            StallCause::SsbFull => self.ssb_full,
            StallCause::CheckpointFull => self.checkpoint_full,
            StallCause::Backend => self.backend,
        }
    }

    fn add(&mut self, cause: StallCause, cycles: Cycle) {
        match cause {
            StallCause::Fence => self.fence += cycles,
            StallCause::SsbFull => self.ssb_full += cycles,
            StallCause::CheckpointFull => self.checkpoint_full += cycles,
            StallCause::Backend => self.backend += cycles,
        }
    }
}

/// Distribution summary of a latency-like quantity (cycles).
///
/// The order statistics are `None` when nothing was observed — "no
/// pcommits at all" and "pcommits of zero cycles" are different facts,
/// and the profile renders them differently (`-` vs `0`).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencySummary {
    /// Observations (exact).
    pub count: u64,
    /// Exact mean.
    pub mean: f64,
    /// Median of the retained reservoir sample.
    pub p50: Option<u64>,
    /// 95th percentile of the retained sample.
    pub p95: Option<u64>,
    /// 99th percentile of the retained sample.
    pub p99: Option<u64>,
    /// Exact maximum.
    pub max: Option<u64>,
}

impl LatencySummary {
    fn of(r: &Reservoir) -> Self {
        LatencySummary {
            count: r.count(),
            mean: r.mean(),
            p50: r.percentile(0.50),
            p95: r.percentile(0.95),
            p99: r.percentile(0.99),
            max: r.max(),
        }
    }
}

/// Time-weighted occupancy summary of a bounded structure.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OccupancySummary {
    /// Occupancy transitions observed.
    pub transitions: u64,
    /// Time-weighted mean occupancy over the observed interval.
    pub mean: f64,
    /// Highest occupancy observed.
    pub high_water: usize,
    /// Configured capacity (0 if the structure never reported).
    pub capacity: usize,
}

/// Tracks one structure's occupancy over time.
#[derive(Debug, Clone)]
struct OccupancyTrack {
    transitions: u64,
    high_water: usize,
    capacity: usize,
    last_now: Cycle,
    last_occ: usize,
    /// Sum of occupancy × dwell-cycles.
    area: u128,
    first_now: Option<Cycle>,
    samples: Reservoir,
}

impl OccupancyTrack {
    fn new() -> Self {
        OccupancyTrack {
            transitions: 0,
            high_water: 0,
            capacity: 0,
            last_now: 0,
            last_occ: 0,
            area: 0,
            first_now: None,
            samples: Reservoir::new(RESERVOIR_CAP),
        }
    }

    fn observe(&mut self, now: Cycle, occupancy: usize, capacity: usize) {
        if self.first_now.is_none() {
            self.first_now = Some(now);
        } else {
            // ordered-by: occupancy observations arrive in simulation
            // order from a single machine, so `now >= last_now`; a
            // clamped dwell only shortens one weighting interval and
            // cannot fabricate latency the way a clamped delta would.
            let dwell = now.saturating_sub(self.last_now);
            self.area += u128::from(dwell) * self.last_occ as u128;
        }
        self.transitions += 1;
        self.high_water = self.high_water.max(occupancy);
        self.capacity = self.capacity.max(capacity);
        self.last_now = now;
        self.last_occ = occupancy;
        self.samples.offer(occupancy as u64);
    }

    fn summary(&self) -> OccupancySummary {
        // ordered-by: `last_now` is monotone over `observe` calls, so it
        // can never precede the first observation's stamp.
        let span = self
            .first_now
            .map(|f| self.last_now.saturating_sub(f))
            .unwrap_or(0);
        OccupancySummary {
            transitions: self.transitions,
            mean: if span == 0 {
                self.last_occ as f64 * f64::from(u8::from(self.transitions > 0))
            } else {
                self.area as f64 / span as f64
            },
            high_water: self.high_water,
            capacity: self.capacity,
        }
    }
}

/// Plain-data snapshot of everything a [`Collector`] measured. `Send`
/// and probe-free, so worker threads can return it across the
/// deterministic executor boundary.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ProfileSummary {
    /// Retirement-stall attribution.
    pub stalls: StallProfile,
    /// `pcommit` issue-to-ack latency distribution.
    pub pcommit_latency: LatencySummary,
    /// Committed-epoch duration distribution (begin to commit).
    pub epoch_duration: LatencySummary,
    /// Fence-stall episode length distribution.
    pub fence_episode: LatencySummary,
    /// SSB occupancy over time.
    pub ssb: OccupancySummary,
    /// WPQ occupancy at admissions.
    pub wpq: OccupancySummary,
    /// Checkpoint-buffer occupancy over time.
    pub checkpoints: OccupancySummary,
    /// Epochs begun.
    pub epochs_begun: u64,
    /// Epochs committed.
    pub epochs_committed: u64,
    /// Rollbacks observed.
    pub rollbacks: u64,
    /// `pcommit`s issued.
    pub pcommits: u64,
    /// Chrome spans dropped once the exporter cap was reached.
    pub spans_dropped: u64,
    /// Timestamp pairs rejected because they arrived out of order
    /// (end before start). Non-zero means the producer misordered its
    /// probe stream and the handle was poisoned at the first offence.
    pub dropped_out_of_order: u64,
}

/// The built-in metrics consumer: feed it the event stream, then read
/// [`Collector::summary`] and [`Collector::chrome_trace`].
///
/// Every structure inside is deterministic (stride reservoirs, no RNG,
/// no wall clock), so identical event streams produce identical
/// summaries and traces.
#[derive(Debug)]
pub struct Collector {
    stalls: StallProfile,
    pcommit_latency: Reservoir,
    epoch_duration: Reservoir,
    fence_episode: Reservoir,
    ssb: OccupancyTrack,
    wpq: OccupancyTrack,
    checkpoints: OccupancyTrack,
    epochs_begun: u64,
    epochs_committed: u64,
    rollbacks: u64,
    pcommits: u64,
    spans: Vec<TraceSpan>,
    spans_dropped: u64,
    dropped_out_of_order: u64,
    open_fence: Option<Cycle>,
}

/// A collector shared between the caller and the probe handle.
pub type SharedCollector = Rc<RefCell<Collector>>;

impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

impl Collector {
    /// An empty collector.
    pub fn new() -> Self {
        Collector {
            stalls: StallProfile::default(),
            pcommit_latency: Reservoir::new(RESERVOIR_CAP),
            epoch_duration: Reservoir::new(RESERVOIR_CAP),
            fence_episode: Reservoir::new(RESERVOIR_CAP),
            ssb: OccupancyTrack::new(),
            wpq: OccupancyTrack::new(),
            checkpoints: OccupancyTrack::new(),
            epochs_begun: 0,
            epochs_committed: 0,
            rollbacks: 0,
            pcommits: 0,
            spans: Vec::new(),
            spans_dropped: 0,
            dropped_out_of_order: 0,
            open_fence: None,
        }
    }

    /// A collector wrapped for sharing: pass a clone to
    /// `ProbeHandle::new`, keep the other to read results after the run.
    pub fn shared() -> SharedCollector {
        Rc::new(RefCell::new(Collector::new()))
    }

    /// `end - start`, panicking on a misordered pair after counting it
    /// in `dropped_out_of_order`.
    ///
    /// The panic is deliberate: it unwinds to the emission boundary
    /// (`ProbeHandle::emit`), which poisons the handle and stops
    /// delivery — the established panic-isolation path. The old
    /// `saturating_sub` behaviour instead recorded the misordered pair
    /// as a 0-cycle latency, silently dragging every distribution
    /// toward zero. The counter is bumped *before* unwinding so a
    /// caller holding the shared collector can still see how many
    /// offences occurred.
    fn checked_delta(&mut self, what: &str, start: Cycle, end: Cycle) -> Cycle {
        match end.checked_sub(start) {
            Some(d) => d,
            None => {
                self.dropped_out_of_order += 1;
                panic!("out-of-order {what} timestamps: start {start} after end {end}");
            }
        }
    }

    fn push_span(&mut self, span: TraceSpan) {
        if self.spans.len() < SPAN_CAP {
            self.spans.push(span);
        } else {
            self.spans_dropped += 1;
        }
    }

    /// Everything measured, as plain data.
    pub fn summary(&self) -> ProfileSummary {
        ProfileSummary {
            stalls: self.stalls,
            pcommit_latency: LatencySummary::of(&self.pcommit_latency),
            epoch_duration: LatencySummary::of(&self.epoch_duration),
            fence_episode: LatencySummary::of(&self.fence_episode),
            ssb: self.ssb.summary(),
            wpq: self.wpq.summary(),
            checkpoints: self.checkpoints.summary(),
            epochs_begun: self.epochs_begun,
            epochs_committed: self.epochs_committed,
            rollbacks: self.rollbacks,
            pcommits: self.pcommits,
            spans_dropped: self.spans_dropped,
            dropped_out_of_order: self.dropped_out_of_order,
        }
    }

    /// The collected spans (epochs, pcommits, fence stalls).
    pub fn spans(&self) -> &[TraceSpan] {
        &self.spans
    }

    /// Renders the spans as a standalone Chrome `trace_event` document.
    pub fn chrome_trace(&self, process: &str) -> String {
        chrome_trace_json(process, 1, &self.spans)
    }
}

impl Probe for Collector {
    fn on(&mut self, ev: &ProbeEvent) {
        match *ev {
            ProbeEvent::EpochBegin { .. } => {
                self.epochs_begun += 1;
            }
            ProbeEvent::EpochCommit {
                now,
                epoch,
                began_at,
            } => {
                self.epochs_committed += 1;
                let dur = self.checked_delta("epoch begin/commit", began_at, now);
                self.epoch_duration.offer(dur);
                self.push_span(TraceSpan {
                    tid: 0,
                    start: began_at,
                    dur,
                    name: "epoch",
                    arg: epoch,
                });
            }
            ProbeEvent::EpochRollback { .. } => {
                self.rollbacks += 1;
            }
            ProbeEvent::PcommitIssue { now, ack_at } => {
                self.pcommits += 1;
                let lat = self.checked_delta("pcommit issue/ack", now, ack_at);
                self.pcommit_latency.offer(lat);
                self.push_span(TraceSpan {
                    tid: 1,
                    start: now,
                    dur: lat,
                    name: "pcommit",
                    arg: lat,
                });
            }
            ProbeEvent::FenceStallBegin { now } => {
                self.open_fence = Some(now);
            }
            ProbeEvent::FenceStallEnd { now, stalled } => {
                self.fence_episode.offer(stalled);
                // Without a matching begin, reconstruct the start from
                // the episode length — which must fit before `now`.
                let start = match self.open_fence.take() {
                    Some(s) => s,
                    None => self.checked_delta("fence stall end", stalled, now),
                };
                self.push_span(TraceSpan {
                    tid: 2,
                    start,
                    dur: stalled,
                    name: "fence stall",
                    arg: stalled,
                });
            }
            ProbeEvent::SsbOccupancy {
                now,
                occupancy,
                capacity,
            } => self.ssb.observe(now, occupancy, capacity),
            ProbeEvent::WpqOccupancy {
                now,
                occupancy,
                capacity,
            } => self.wpq.observe(now, occupancy, capacity),
            ProbeEvent::CheckpointOccupancy {
                now,
                live,
                capacity,
            } => self.checkpoints.observe(now, live, capacity),
            ProbeEvent::RetireStall { cause, cycles, .. } => {
                self.stalls.add(cause, cycles);
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn stall_buckets_partition_the_attribution() {
        let mut c = Collector::new();
        for (cause, cycles) in [
            (StallCause::Fence, 10),
            (StallCause::SsbFull, 5),
            (StallCause::CheckpointFull, 3),
            (StallCause::Backend, 7),
            (StallCause::Fence, 2),
        ] {
            c.on(&ProbeEvent::RetireStall {
                now: 0,
                cause,
                cycles,
            });
        }
        let s = c.summary().stalls;
        assert_eq!(
            (s.fence, s.ssb_full, s.checkpoint_full, s.backend),
            (12, 5, 3, 7)
        );
        assert_eq!(s.total(), 27);
        assert_eq!(s.get(StallCause::Fence), 12);
    }

    #[test]
    fn epoch_lifecycle_feeds_durations_and_spans() {
        let mut c = Collector::new();
        c.on(&ProbeEvent::EpochBegin { now: 100, epoch: 0 });
        c.on(&ProbeEvent::EpochCommit {
            now: 400,
            epoch: 0,
            began_at: 100,
        });
        c.on(&ProbeEvent::EpochBegin { now: 150, epoch: 1 });
        c.on(&ProbeEvent::EpochRollback {
            now: 500,
            squashed_uops: 8,
        });
        let s = c.summary();
        assert_eq!(s.epochs_begun, 2);
        assert_eq!(s.epochs_committed, 1);
        assert_eq!(s.rollbacks, 1);
        assert_eq!(s.epoch_duration.count, 1);
        assert_eq!(s.epoch_duration.max, Some(300));
        assert_eq!(c.spans().len(), 1);
        assert_eq!(c.spans()[0].dur, 300);
    }

    #[test]
    fn pcommit_latency_distribution_is_exact_for_small_streams() {
        let mut c = Collector::new();
        for lat in [100u64, 200, 300] {
            c.on(&ProbeEvent::PcommitIssue {
                now: 1000,
                ack_at: 1000 + lat,
            });
        }
        let s = c.summary().pcommit_latency;
        assert_eq!(s.count, 3);
        assert_eq!(s.max, Some(300));
        assert!((s.mean - 200.0).abs() < 1e-9);
        assert_eq!(s.p50, Some(200));
    }

    #[test]
    fn never_observed_distributions_summarize_as_none() {
        let c = Collector::new();
        let s = c.summary().pcommit_latency;
        assert_eq!(s.count, 0);
        assert_eq!((s.p50, s.p95, s.p99, s.max), (None, None, None, None));
    }

    #[test]
    fn misordered_probe_stream_poisons_the_handle_and_is_counted() {
        use std::cell::RefCell;
        use std::rc::Rc;

        use crate::probe::ProbeHandle;

        let shared: Rc<RefCell<Collector>> = Collector::shared();
        let h = ProbeHandle::new(shared.clone());
        // Silence the default hook's backtrace spew for the expected
        // panic; restore it afterwards (same pattern as probe.rs).
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        // ack_at earlier than issue: previously recorded as 0-cycle
        // latency, now rejected at the emission boundary.
        h.emit(ProbeEvent::PcommitIssue {
            now: 1000,
            ack_at: 900,
        });
        std::panic::set_hook(hook);
        assert!(h.is_poisoned(), "misordered stream must poison");
        let s = shared.borrow().summary();
        assert_eq!(s.dropped_out_of_order, 1);
        // The bad pair never reached the distribution.
        assert_eq!(s.pcommit_latency.count, 0);
        // Delivery stopped: a later well-formed event is dropped.
        h.emit(ProbeEvent::PcommitIssue {
            now: 2000,
            ack_at: 2100,
        });
        assert_eq!(shared.borrow().summary().pcommit_latency.count, 0);
    }

    #[test]
    fn occupancy_mean_is_time_weighted() {
        let mut c = Collector::new();
        // Occupancy 2 for 10 cycles, then 4 for 30 cycles.
        c.on(&ProbeEvent::SsbOccupancy {
            now: 0,
            occupancy: 2,
            capacity: 256,
        });
        c.on(&ProbeEvent::SsbOccupancy {
            now: 10,
            occupancy: 4,
            capacity: 256,
        });
        c.on(&ProbeEvent::SsbOccupancy {
            now: 40,
            occupancy: 0,
            capacity: 256,
        });
        let s = c.summary().ssb;
        assert_eq!(s.high_water, 4);
        assert_eq!(s.capacity, 256);
        // (2*10 + 4*30) / 40 = 3.5
        assert!((s.mean - 3.5).abs() < 1e-9, "mean={}", s.mean);
    }

    #[test]
    fn fence_episodes_become_spans() {
        let mut c = Collector::new();
        c.on(&ProbeEvent::FenceStallBegin { now: 50 });
        c.on(&ProbeEvent::FenceStallEnd {
            now: 80,
            stalled: 30,
        });
        assert_eq!(c.summary().fence_episode.count, 1);
        assert_eq!(c.spans()[0].start, 50);
        assert_eq!(c.spans()[0].dur, 30);
        let trace = c.chrome_trace("test");
        assert!(trace.contains("fence stall"));
    }

    #[test]
    fn chrome_trace_renders_loadable_json() {
        let mut c = Collector::new();
        c.on(&ProbeEvent::PcommitIssue {
            now: 10,
            ack_at: 325,
        });
        let t = c.chrome_trace("sp256");
        assert!(t.starts_with("{\"traceEvents\":["));
        assert!(t.ends_with("]}"));
    }
}
