//! The probe trait, the event vocabulary, and the panic-safe handle.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;

use crate::Cycle;

/// Why retirement made no progress this cycle (the paper's stall
/// taxonomy: persist barriers vs. the structures SP adds vs. everything
/// the baseline machine already suffered).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum StallCause {
    /// An `sfence` (or combined barrier) at the head of the ROB is
    /// waiting on persistence.
    Fence,
    /// The speculative store buffer is full.
    SsbFull,
    /// No register checkpoint is free to open a new epoch.
    CheckpointFull,
    /// Backend/memory stall: the head micro-op's result is not ready
    /// (cache misses, WPQ drains, structural hazards).
    Backend,
}

impl StallCause {
    /// All causes, in report order.
    pub const ALL: [StallCause; 4] = [
        StallCause::Fence,
        StallCause::SsbFull,
        StallCause::CheckpointFull,
        StallCause::Backend,
    ];

    /// Stable lower-case label used in JSON payloads and tables.
    pub fn label(self) -> &'static str {
        match self {
            StallCause::Fence => "fence",
            StallCause::SsbFull => "ssb_full",
            StallCause::CheckpointFull => "checkpoint_full",
            StallCause::Backend => "backend",
        }
    }
}

/// One observation emitted by an instrumented component.
///
/// Events carry copies of state (cycle stamps, ids, occupancies) — a
/// consumer can never reach back into the machine, which is what makes
/// the probe-neutrality guarantee enforceable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProbeEvent {
    /// A speculative epoch opened (a checkpoint was taken).
    EpochBegin {
        /// Current cycle.
        now: Cycle,
        /// Epoch id (monotone per run).
        epoch: u64,
    },
    /// The oldest epoch committed (its pcommit acknowledged and its SSB
    /// entries drained).
    EpochCommit {
        /// Current cycle.
        now: Cycle,
        /// Epoch id.
        epoch: u64,
        /// Cycle the epoch's checkpoint was taken.
        began_at: Cycle,
    },
    /// Speculation rolled back to the oldest checkpoint (external
    /// coherence conflict).
    EpochRollback {
        /// Current cycle.
        now: Cycle,
        /// Micro-ops squashed from the pipeline.
        squashed_uops: u64,
    },
    /// A `pcommit` was issued to the memory controller.
    PcommitIssue {
        /// Issue cycle (as seen by the controller).
        now: Cycle,
        /// Cycle the acknowledgement returns (every prior WPQ write
        /// drained).
        ack_at: Cycle,
    },
    /// Retirement began stalling on a persist barrier.
    FenceStallBegin {
        /// Current cycle.
        now: Cycle,
    },
    /// The persist-barrier stall ended.
    FenceStallEnd {
        /// Current cycle.
        now: Cycle,
        /// Cycles spent stalled in this episode.
        stalled: Cycle,
    },
    /// SSB occupancy changed.
    SsbOccupancy {
        /// Current cycle.
        now: Cycle,
        /// Entries live.
        occupancy: usize,
        /// Configured capacity.
        capacity: usize,
    },
    /// Write-pending-queue occupancy observed at an admission.
    WpqOccupancy {
        /// Current cycle (admission time).
        now: Cycle,
        /// Writes admitted but not yet drained.
        occupancy: usize,
        /// Configured capacity.
        capacity: usize,
    },
    /// Checkpoint-buffer occupancy changed.
    CheckpointOccupancy {
        /// Current cycle.
        now: Cycle,
        /// Live checkpoints.
        live: usize,
        /// Configured capacity.
        capacity: usize,
    },
    /// Retirement stalled for `cycles` attributed to `cause`.
    RetireStall {
        /// Cycle at the end of the stalled step.
        now: Cycle,
        /// Attribution bucket.
        cause: StallCause,
        /// Stalled cycles charged to the bucket this step.
        cycles: Cycle,
    },
}

/// A consumer of [`ProbeEvent`]s.
///
/// Implementations must be deterministic functions of the event stream
/// if they feed reports that are compared across `--jobs` counts.
pub trait Probe {
    /// Receives one event. Panics are caught at the emission boundary
    /// (the handle is poisoned and the simulation continues).
    fn on(&mut self, ev: &ProbeEvent);
}

/// The inert consumer: receives every event and does nothing. Pinned by
/// the determinism tests as behaviourally identical to a disabled
/// handle.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullProbe;

impl Probe for NullProbe {
    #[inline]
    fn on(&mut self, _ev: &ProbeEvent) {}
}

/// A shared consumer: lets the caller keep a handle to the collector
/// while the simulator owns the probe.
impl<P: Probe> Probe for Rc<RefCell<P>> {
    fn on(&mut self, ev: &ProbeEvent) {
        // A re-entrant borrow (a probe that emits into itself) is
        // impossible by construction; a concurrently held user borrow
        // simply skips the event rather than aborting the simulation.
        if let Ok(mut p) = self.try_borrow_mut() {
            p.on(ev);
        }
    }
}

struct ProbeCell {
    probe: RefCell<Box<dyn Probe>>,
    poisoned: Cell<bool>,
}

/// A cheap, cloneable handle instrumented components emit through.
///
/// `ProbeHandle::disabled()` (also `Default`) is a `None` inside: the
/// fast path is a single branch, so uninstrumented simulation pays
/// nothing. The handle is deliberately `!Send` (`Rc`-based) — construct
/// one per simulation inside each worker.
#[derive(Clone, Default)]
pub struct ProbeHandle {
    cell: Option<Rc<ProbeCell>>,
}

impl fmt::Debug for ProbeHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.cell {
            None => f.write_str("ProbeHandle(disabled)"),
            Some(c) if c.poisoned.get() => f.write_str("ProbeHandle(poisoned)"),
            Some(_) => f.write_str("ProbeHandle(enabled)"),
        }
    }
}

impl ProbeHandle {
    /// The disabled handle: every emission is a no-op branch.
    pub fn disabled() -> Self {
        ProbeHandle { cell: None }
    }

    /// A handle delivering events to `probe`.
    pub fn new(probe: impl Probe + 'static) -> Self {
        ProbeHandle {
            cell: Some(Rc::new(ProbeCell {
                probe: RefCell::new(Box::new(probe)),
                poisoned: Cell::new(false),
            })),
        }
    }

    /// Is a consumer attached (poisoned or not)?
    pub fn is_enabled(&self) -> bool {
        self.cell.is_some()
    }

    /// Did a consumer panic? (Delivery has stopped; the simulation was
    /// unaffected.)
    pub fn is_poisoned(&self) -> bool {
        self.cell.as_ref().is_some_and(|c| c.poisoned.get())
    }

    /// Delivers `ev` to the consumer, if one is attached and healthy.
    ///
    /// This is the probe-neutrality boundary: a panic inside the
    /// consumer is caught here, poisons the handle, and the caller
    /// carries on — the consumer can observe the machine but never
    /// perturb it.
    #[inline]
    pub fn emit(&self, ev: ProbeEvent) {
        let Some(cell) = &self.cell else { return };
        if cell.poisoned.get() {
            return;
        }
        let delivered = catch_unwind(AssertUnwindSafe(|| {
            if let Ok(mut p) = cell.probe.try_borrow_mut() {
                p.on(&ev);
            }
        }));
        if delivered.is_err() {
            cell.poisoned.set(true);
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    struct Counter(Rc<Cell<u64>>);
    impl Probe for Counter {
        fn on(&mut self, _ev: &ProbeEvent) {
            self.0.set(self.0.get() + 1);
        }
    }

    #[test]
    fn disabled_handle_is_inert() {
        let h = ProbeHandle::disabled();
        assert!(!h.is_enabled());
        h.emit(ProbeEvent::FenceStallBegin { now: 1 });
        assert!(!h.is_poisoned());
    }

    #[test]
    fn events_reach_the_consumer() {
        let n = Rc::new(Cell::new(0));
        let h = ProbeHandle::new(Counter(n.clone()));
        for i in 0..5 {
            h.emit(ProbeEvent::FenceStallBegin { now: i });
        }
        assert_eq!(n.get(), 5);
        assert!(h.is_enabled());
        assert!(!h.is_poisoned());
    }

    #[test]
    fn panicking_consumer_poisons_but_does_not_propagate() {
        struct Bomb;
        impl Probe for Bomb {
            fn on(&mut self, _ev: &ProbeEvent) {
                panic!("consumer bug");
            }
        }
        // Silence the default hook's backtrace spew for the expected
        // panic; restore it afterwards.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let h = ProbeHandle::new(Bomb);
        h.emit(ProbeEvent::FenceStallBegin { now: 0 });
        std::panic::set_hook(hook);
        assert!(h.is_poisoned());
        // Later emissions are dropped silently.
        h.emit(ProbeEvent::FenceStallEnd { now: 1, stalled: 1 });
        assert!(h.is_poisoned());
    }

    #[test]
    fn shared_collector_pattern_keeps_caller_access() {
        let shared = Rc::new(RefCell::new(Counter(Rc::new(Cell::new(0)))));
        let inner = shared.borrow().0.clone();
        let h = ProbeHandle::new(shared);
        h.emit(ProbeEvent::FenceStallBegin { now: 0 });
        h.emit(ProbeEvent::FenceStallBegin { now: 1 });
        assert_eq!(inner.get(), 2);
    }

    #[test]
    fn clones_share_the_same_consumer() {
        let n = Rc::new(Cell::new(0));
        let h = ProbeHandle::new(Counter(n.clone()));
        let h2 = h.clone();
        h.emit(ProbeEvent::FenceStallBegin { now: 0 });
        h2.emit(ProbeEvent::FenceStallBegin { now: 1 });
        assert_eq!(n.get(), 2);
    }

    #[test]
    fn stall_cause_labels_are_stable() {
        let labels: Vec<_> = StallCause::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels, ["fence", "ssb_full", "checkpoint_full", "backend"]);
    }
}
