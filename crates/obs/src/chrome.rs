//! Chrome `trace_event` export (the JSON Array/Object format consumed
//! by Perfetto and `chrome://tracing`).
//!
//! Cycles are rendered as microseconds 1:1 — the absolute unit is
//! meaningless for a simulated machine; what matters is that epoch,
//! pcommit and fence-stall spans line up on a common axis. Spans are
//! "X" (complete) events; one "M" (metadata) event names each row.

use crate::Cycle;

/// One complete span on the trace timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSpan {
    /// Row (thread id) the span renders on: 0 = epochs, 1 = pcommits,
    /// 2 = fence stalls.
    pub tid: u32,
    /// Start cycle.
    pub start: Cycle,
    /// Duration in cycles (zero-length spans are widened to 1 so they
    /// stay visible).
    pub dur: Cycle,
    /// Static span name.
    pub name: &'static str,
    /// Numeric qualifier rendered into the name (epoch id, latency).
    pub arg: u64,
}

/// Row names for the `tid` values used by [`crate::Collector`].
pub const ROW_NAMES: [(u32, &str); 3] = [(0, "epochs"), (1, "pcommits"), (2, "fence stalls")];

/// Renders spans as a Chrome `trace_event` JSON document.
///
/// `pid` groups the spans into one named process (Perfetto renders one
/// track group per process), so two configurations can be merged into
/// one file by concatenating their span lists under different `pid`s —
/// see [`merge_chrome_traces`].
pub fn chrome_trace_json(process: &str, pid: u32, spans: &[TraceSpan]) -> String {
    let mut out = String::with_capacity(64 + spans.len() * 96);
    out.push_str("{\"traceEvents\":[");
    push_metadata(&mut out, process, pid);
    for s in spans {
        push_span(&mut out, pid, s);
    }
    out.push_str("]}");
    out
}

/// Merges several `(process_name, spans)` groups into one document,
/// assigning `pid`s in order (1-based).
pub fn merge_chrome_traces(groups: &[(&str, &[TraceSpan])]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, (process, spans)) in groups.iter().enumerate() {
        let pid = i as u32 + 1;
        push_metadata(&mut out, process, pid);
        for s in spans.iter() {
            push_span(&mut out, pid, s);
        }
    }
    out.push_str("]}");
    out
}

fn push_comma(out: &mut String) {
    if !out.ends_with('[') {
        out.push(',');
    }
}

fn push_metadata(out: &mut String, process: &str, pid: u32) {
    use std::fmt::Write;
    push_comma(out);
    let _ = write!(
        out,
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
         \"args\":{{\"name\":\"{}\"}}}}",
        escape(process)
    );
    for (tid, name) in ROW_NAMES {
        push_comma(out);
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
             \"args\":{{\"name\":\"{name}\"}}}}"
        );
    }
}

fn push_span(out: &mut String, pid: u32, s: &TraceSpan) {
    use std::fmt::Write;
    push_comma(out);
    let _ = write!(
        out,
        "{{\"name\":\"{} {}\",\"cat\":\"sim\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
         \"pid\":{pid},\"tid\":{}}}",
        s.name,
        s.arg,
        s.start,
        s.dur.max(1),
        s.tid
    );
}

fn escape(s: &str) -> String {
    let mut e = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => e.push_str("\\\""),
            '\\' => e.push_str("\\\\"),
            '\n' => e.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(e, "\\u{:04x}", c as u32);
            }
            c => e.push(c),
        }
    }
    e
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn renders_the_trace_event_envelope() {
        let spans = [
            TraceSpan {
                tid: 0,
                start: 10,
                dur: 90,
                name: "epoch",
                arg: 0,
            },
            TraceSpan {
                tid: 1,
                start: 20,
                dur: 0,
                name: "pcommit",
                arg: 315,
            },
        ];
        let j = chrome_trace_json("sp256", 1, &spans);
        assert!(j.starts_with("{\"traceEvents\":["));
        assert!(j.ends_with("]}"));
        assert!(j.contains("\"ph\":\"M\""));
        assert!(j.contains("\"name\":\"epoch 0\""));
        assert!(j.contains("\"ts\":10"));
        // Zero-duration spans are widened so they render.
        assert!(j.contains("\"dur\":1"));
        assert!(j.contains("\"args\":{\"name\":\"sp256\"}"));
    }

    #[test]
    fn merge_assigns_distinct_pids() {
        let a = [TraceSpan {
            tid: 0,
            start: 0,
            dur: 5,
            name: "epoch",
            arg: 1,
        }];
        let j = merge_chrome_traces(&[("baseline", &a[..]), ("sp256", &a[..])]);
        assert!(j.contains("\"pid\":1"));
        assert!(j.contains("\"pid\":2"));
        assert!(j.contains("baseline"));
        assert!(j.contains("sp256"));
    }

    #[test]
    fn escapes_process_names() {
        let j = chrome_trace_json("a\"b\\c", 1, &[]);
        assert!(j.contains("a\\\"b\\\\c"));
    }

    #[test]
    fn empty_trace_is_still_loadable() {
        let j = merge_chrome_traces(&[]);
        assert_eq!(j, "{\"traceEvents\":[]}");
    }
}
