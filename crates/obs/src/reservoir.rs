//! A deterministic bounded reservoir for time-series samples.
//!
//! Classic reservoir sampling draws random replacement indices; that
//! would make profiles depend on an RNG stream and complicate the
//! `--jobs` byte-identity guarantee for no benefit. This reservoir is
//! instead *stride-decimating*: it keeps every `stride`-th offered
//! sample, and whenever the buffer fills it drops every second retained
//! sample and doubles the stride. The retained set is a uniform
//! systematic sample of the stream — a pure function of the offered
//! sequence, so identical runs keep identical samples.

/// A bounded, deterministic sample reservoir over `u64` observations.
#[derive(Debug, Clone)]
pub struct Reservoir {
    cap: usize,
    stride: u64,
    /// Offered-sample counter used for stride selection.
    offered: u64,
    samples: Vec<u64>,
    sum: u128,
    max: u64,
}

impl Reservoir {
    /// A reservoir retaining at most `cap` samples (`cap` is clamped to
    /// at least 2 so decimation always makes progress).
    pub fn new(cap: usize) -> Self {
        Reservoir {
            cap: cap.max(2),
            stride: 1,
            offered: 0,
            samples: Vec::new(),
            sum: 0,
            max: 0,
        }
    }

    /// Offers one observation. Sum/count/max are exact over *all*
    /// offered samples; the retained set feeds the percentiles.
    pub fn offer(&mut self, v: u64) {
        self.sum += u128::from(v);
        self.max = self.max.max(v);
        if self.offered.is_multiple_of(self.stride) {
            if self.samples.len() == self.cap {
                // Keep every second sample (even indices), double the
                // stride: the retained set stays systematic.
                let mut i = 0;
                self.samples.retain(|_| {
                    let keep = i % 2 == 0;
                    i += 1;
                    keep
                });
                self.stride *= 2;
                // The current offer is retained only if it still lands
                // on the coarser stride.
                if self.offered.is_multiple_of(self.stride) {
                    self.samples.push(v);
                }
            } else {
                self.samples.push(v);
            }
        }
        self.offered += 1;
    }

    /// Observations offered (exact).
    pub fn count(&self) -> u64 {
        self.offered
    }

    /// Exact mean over every offered observation; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.sum as f64 / self.offered as f64
        }
    }

    /// Exact maximum over every offered observation, or `None` when the
    /// reservoir is empty — a true zero sample ("instant pcommit") and
    /// "no samples at all" are different answers, and callers render
    /// them differently.
    pub fn max(&self) -> Option<u64> {
        (self.offered > 0).then_some(self.max)
    }

    /// The `p`-th percentile (0.0..=1.0) of the retained sample, by
    /// nearest-rank on the sorted retained set; `None` when empty.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let rank = (p.clamp(0.0, 1.0) * (sorted.len() - 1) as f64).round() as usize;
        Some(sorted[rank.min(sorted.len() - 1)])
    }

    /// Returns `true` if no observation has ever been offered.
    pub fn is_empty(&self) -> bool {
        self.offered == 0
    }

    /// Samples currently retained.
    pub fn retained(&self) -> usize {
        self.samples.len()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn exact_stats_survive_decimation() {
        let mut r = Reservoir::new(16);
        for v in 1..=1000u64 {
            r.offer(v);
        }
        assert_eq!(r.count(), 1000);
        assert_eq!(r.max(), Some(1000));
        assert!((r.mean() - 500.5).abs() < 1e-9);
        assert!(r.retained() <= 16);
    }

    #[test]
    fn percentiles_track_a_uniform_ramp() {
        let mut r = Reservoir::new(64);
        for v in 0..10_000u64 {
            r.offer(v);
        }
        let p50 = r.percentile(0.50).unwrap();
        let p99 = r.percentile(0.99).unwrap();
        // Systematic sampling of a ramp keeps quantiles within a couple
        // of strides of truth.
        assert!((4000..=6000).contains(&p50), "p50={p50}");
        assert!(p99 >= 9000, "p99={p99}");
        assert!(r.percentile(0.0) <= r.percentile(1.0));
    }

    #[test]
    fn deterministic_across_identical_streams() {
        let mut a = Reservoir::new(8);
        let mut b = Reservoir::new(8);
        for v in 0..5000u64 {
            a.offer(v * 37 % 997);
            b.offer(v * 37 % 997);
        }
        assert_eq!(a.samples, b.samples);
        assert_eq!(a.percentile(0.95), b.percentile(0.95));
    }

    #[test]
    fn empty_reservoir_reports_none_not_zero() {
        let r = Reservoir::new(8);
        assert!(r.is_empty());
        assert_eq!(r.count(), 0);
        assert_eq!(r.max(), None);
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.percentile(0.5), None);
    }

    #[test]
    fn true_zero_samples_are_distinguishable_from_empty() {
        let mut r = Reservoir::new(8);
        r.offer(0);
        assert!(!r.is_empty());
        assert_eq!(r.max(), Some(0));
        assert_eq!(r.percentile(0.5), Some(0));
    }

    #[test]
    fn tiny_cap_is_clamped_and_progresses() {
        let mut r = Reservoir::new(0);
        for v in 0..100u64 {
            r.offer(v);
        }
        assert!(r.retained() >= 1);
        assert_eq!(r.count(), 100);
    }
}
