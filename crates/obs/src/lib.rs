//! # spp-obs — cycle-resolved observability
//!
//! A zero-cost-when-disabled tracing/metrics layer for the speculative
//! persistence simulator. The pipeline, memory controller and SP
//! structures emit [`ProbeEvent`]s through a [`ProbeHandle`]; consumers
//! implement [`Probe`] and turn the event stream into profiles.
//!
//! Three guarantees define the design:
//!
//! * **Zero cost when disabled.** A disabled handle
//!   ([`ProbeHandle::disabled`]) is a `None` — every emission site is
//!   one branch and no event is ever constructed into a consumer.
//!   [`NullProbe`] exists for the instrumented-but-inert configuration;
//!   both are pinned by determinism tests.
//! * **Probes never change the simulation.** Events carry copies of
//!   state; consumers cannot reach back into the machine. A panicking
//!   consumer is caught at the emission boundary and the handle is
//!   poisoned (delivery stops, the run continues) — asserted by the
//!   probe-neutrality property tests in `spp-cpu`.
//! * **Deterministic consumers.** The built-in [`Collector`] uses a
//!   stride-decimating [`Reservoir`] (no RNG, no clocks), so two runs
//!   of the same trace produce byte-identical profiles at any `--jobs`
//!   count.
//!
//! Built-in consumers: a stall-attribution profile
//! ([`StallProfile`]), bounded-reservoir latency/occupancy
//! distributions ([`Collector::summary`]), and a Chrome `trace_event`
//! JSON exporter ([`Collector::chrome_trace`]) loadable in Perfetto.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Simulation code must degrade to typed errors, never abort mid-run:
// `.unwrap()`/`.expect()` are banned outside tests (CI runs clippy with
// `-D warnings`, making these hard errors there).
#![warn(clippy::unwrap_used, clippy::expect_used)]

mod chrome;
mod collector;
mod gauge;
mod probe;
mod reservoir;

pub use chrome::{chrome_trace_json, merge_chrome_traces, TraceSpan};
pub use collector::{
    Collector, LatencySummary, OccupancySummary, ProfileSummary, SharedCollector, StallProfile,
};
pub use gauge::MemGauge;
pub use probe::{NullProbe, Probe, ProbeEvent, ProbeHandle, StallCause};
pub use reservoir::Reservoir;

/// A cycle count or timestamp at the simulated core clock (mirrors
/// `spp_mem::Cycle`; this crate sits below the rest of the workspace and
/// depends on nothing).
pub type Cycle = u64;
