//! A deterministic byte gauge for bounded-memory pipelines.
//!
//! The streaming trace path keeps a recorder and a simulator running
//! concurrently with a bounded buffer of trace chunks between them; the
//! gauge is how that path *proves* its memory claim. Producers call
//! [`MemGauge::acquire`] before a buffer enters the pipeline and
//! [`MemGauge::release`] when it leaves; the gauge tracks the current
//! total and the high-water mark. Like every observability type in this
//! crate it is purely passive (no clocks, no RNG, no allocation) so two
//! runs of the same pipeline report byte-identical peaks.

use std::sync::atomic::{AtomicU64, Ordering};

/// Tracks bytes currently held and the peak ever held. Thread-safe:
/// producer and consumer sides update it concurrently.
#[derive(Debug, Default)]
pub struct MemGauge {
    current: AtomicU64,
    peak: AtomicU64,
}

impl MemGauge {
    /// An empty gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accounts `bytes` entering the pipeline; returns the new current
    /// total (which may already be the new peak).
    pub fn acquire(&self, bytes: u64) -> u64 {
        let now = self.current.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak.fetch_max(now, Ordering::Relaxed);
        now
    }

    /// Accounts `bytes` leaving the pipeline.
    pub fn release(&self, bytes: u64) {
        self.current.fetch_sub(bytes, Ordering::Relaxed);
    }

    /// Bytes currently held.
    pub fn current(&self) -> u64 {
        self.current.load(Ordering::Relaxed)
    }

    /// The largest total ever held.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_the_high_water_mark() {
        let g = MemGauge::new();
        assert_eq!((g.current(), g.peak()), (0, 0));
        g.acquire(100);
        g.acquire(50);
        assert_eq!((g.current(), g.peak()), (150, 150));
        g.release(120);
        assert_eq!((g.current(), g.peak()), (30, 150));
        g.acquire(40);
        assert_eq!((g.current(), g.peak()), (70, 150), "peak never shrinks");
    }

    #[test]
    fn concurrent_updates_balance_out() {
        let g = MemGauge::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        g.acquire(8);
                        g.release(8);
                    }
                });
            }
        });
        assert_eq!(g.current(), 0);
        assert!(g.peak() >= 8 && g.peak() <= 32);
    }
}
