//! Persistent addresses and cache-block arithmetic.

use std::fmt;

/// Size of a cache block in bytes (64 B, per Table 1/2 of the paper).
pub const BLOCK_SIZE: u64 = 64;

/// A byte address in the simulated persistent (NVMM) address space.
///
/// Addresses are plain 64-bit offsets into the shadow memory managed by
/// [`crate::Space`]. The newtype prevents accidental mixing with host
/// pointers, key values, or cycle counts.
///
/// ```
/// use spp_pmem::PAddr;
/// let a = PAddr::new(0x1040);
/// assert_eq!(a.block(), PAddr::new(0x1040).block());
/// assert_eq!(a.block_offset(), 0x00);
/// assert_eq!(a.offset(8).raw(), 0x1048);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PAddr(u64);

impl PAddr {
    /// The null address. Allocation never returns it, so data structures
    /// use it as their "no node" sentinel.
    pub const NULL: PAddr = PAddr(0);

    /// Creates an address from a raw byte offset.
    pub const fn new(raw: u64) -> Self {
        PAddr(raw)
    }

    /// Returns the raw byte offset.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns `true` if this is [`PAddr::NULL`].
    pub const fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Returns the identifier of the 64-byte cache block containing this
    /// address.
    pub const fn block(self) -> BlockId {
        BlockId(self.0 / BLOCK_SIZE)
    }

    /// Returns the offset of this address within its cache block.
    pub const fn block_offset(self) -> u64 {
        self.0 % BLOCK_SIZE
    }

    /// Returns the address `bytes` past this one.
    ///
    /// # Panics
    ///
    /// Panics on address-space overflow.
    pub fn offset(self, bytes: u64) -> PAddr {
        match self.0.checked_add(bytes) {
            Some(a) => PAddr(a),
            None => panic!("persistent address overflow: {self} + {bytes}"),
        }
    }

    /// Returns this address rounded down to its cache-block base.
    pub const fn block_base(self) -> PAddr {
        PAddr(self.0 - self.0 % BLOCK_SIZE)
    }
}

impl fmt::Display for PAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p:{:#x}", self.0)
    }
}

impl From<PAddr> for u64 {
    fn from(a: PAddr) -> u64 {
        a.0
    }
}

/// Identifier of a 64-byte cache block (the address divided by
/// [`BLOCK_SIZE`]).
///
/// ```
/// use spp_pmem::{BlockId, PAddr};
/// assert_eq!(PAddr::new(130).block(), BlockId::new(2));
/// assert_eq!(BlockId::new(2).base(), PAddr::new(128));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockId(u64);

impl BlockId {
    /// Creates a block id from a raw block number.
    pub const fn new(raw: u64) -> Self {
        BlockId(raw)
    }

    /// Returns the raw block number.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the byte address of the first byte of the block.
    pub const fn base(self) -> PAddr {
        PAddr(self.0 * BLOCK_SIZE)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b:{:#x}", self.0)
    }
}

/// Iterates over the block ids overlapped by the byte range
/// `[addr, addr + len)`.
///
/// ```
/// use spp_pmem::{blocks_covering, PAddr};
/// let blocks: Vec<_> = blocks_covering(PAddr::new(60), 8).collect();
/// assert_eq!(blocks.len(), 2);
/// ```
pub fn blocks_covering(addr: PAddr, len: u64) -> impl Iterator<Item = BlockId> {
    let first = addr.raw() / BLOCK_SIZE;
    let last = if len == 0 {
        first
    } else {
        (addr.raw() + len - 1) / BLOCK_SIZE
    };
    (first..=last).map(BlockId)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn block_arithmetic() {
        let a = PAddr::new(64 * 5 + 17);
        assert_eq!(a.block(), BlockId::new(5));
        assert_eq!(a.block_offset(), 17);
        assert_eq!(a.block_base(), PAddr::new(320));
        assert_eq!(a.block().base(), PAddr::new(320));
    }

    #[test]
    fn null_is_block_zero() {
        assert!(PAddr::NULL.is_null());
        assert_eq!(PAddr::NULL.block(), BlockId::new(0));
    }

    #[test]
    fn covering_single_block() {
        let v: Vec<_> = blocks_covering(PAddr::new(128), 64).collect();
        assert_eq!(v, vec![BlockId::new(2)]);
    }

    #[test]
    fn covering_straddles() {
        let v: Vec<_> = blocks_covering(PAddr::new(120), 16).collect();
        assert_eq!(v, vec![BlockId::new(1), BlockId::new(2)]);
    }

    #[test]
    fn covering_empty_range() {
        let v: Vec<_> = blocks_covering(PAddr::new(64), 0).collect();
        assert_eq!(v, vec![BlockId::new(1)]);
    }

    #[test]
    fn offset_advances() {
        assert_eq!(PAddr::new(8).offset(8), PAddr::new(16));
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn offset_overflow_panics() {
        let _ = PAddr::new(u64::MAX).offset(1);
    }
}
