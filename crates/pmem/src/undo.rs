//! Undo-log layout and crash recovery (write-ahead logging, §3.1).
//!
//! The log lives at a fixed location in the persistent address space,
//! split into a packed index and block-sized data slots so that logging
//! one 64-byte node costs roughly 1.25 block writebacks:
//!
//! ```text
//! header block:  [+0]  logged_bit   (u64: 0 = idle, 1 = tx in flight)
//!                [+8]  entry_count  (u64)
//! index entry i: [+0]  target addr  (u64)
//!                [+8]  length       (u64, 1..=64 bytes)   (16 B stride)
//! data slot i:   64 bytes of old data                      (64 B stride)
//! ```
//!
//! `logged_bit` and `entry_count` share a cache block, so the persist
//! that publishes the bit also publishes the count atomically.

use crate::addr::{PAddr, BLOCK_SIZE};
use crate::space::Space;

/// Byte stride of one index entry.
pub const INDEX_STRIDE: u64 = 16;
/// Byte stride of one data slot (and the maximum bytes per entry).
pub const ENTRY_MAX_LEN: u64 = BLOCK_SIZE;

/// Location and capacity of the undo-log region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogLayout {
    /// Address of the header block (`logged_bit`, `entry_count`).
    pub header: PAddr,
    /// Address of index entry 0.
    pub index: PAddr,
    /// Address of data slot 0.
    pub data: PAddr,
    /// Number of entry slots.
    pub capacity: u64,
}

impl LogLayout {
    /// Lays the log out contiguously starting at `header` (which must be
    /// block-aligned).
    ///
    /// # Panics
    ///
    /// Panics if `header` is not block-aligned or `capacity` is zero.
    pub fn contiguous(header: PAddr, capacity: u64) -> Self {
        assert!(capacity > 0, "log capacity must be positive");
        assert_eq!(
            header.raw() % BLOCK_SIZE,
            0,
            "log header must be block-aligned"
        );
        let index = header.offset(BLOCK_SIZE);
        let index_bytes = (capacity * INDEX_STRIDE).div_ceil(BLOCK_SIZE) * BLOCK_SIZE;
        let data = index.offset(index_bytes);
        LogLayout {
            header,
            index,
            data,
            capacity,
        }
    }

    /// Address of the `logged_bit` field.
    pub fn logged_bit(&self) -> PAddr {
        self.header
    }

    /// Address of the `entry_count` field.
    pub fn entry_count(&self) -> PAddr {
        self.header.offset(8)
    }

    /// Address of index entry `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= capacity`.
    pub fn index_entry(&self, i: u64) -> PAddr {
        assert!(i < self.capacity, "undo log entry index out of range");
        self.index.offset(i * INDEX_STRIDE)
    }

    /// Address of data slot `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= capacity`.
    pub fn data_entry(&self, i: u64) -> PAddr {
        assert!(i < self.capacity, "undo log entry index out of range");
        self.data.offset(i * ENTRY_MAX_LEN)
    }

    /// Total bytes occupied by the log region (header + index + data).
    pub fn region_len(&self) -> u64 {
        (self.data.raw() - self.header.raw()) + self.capacity * ENTRY_MAX_LEN
    }
}

/// Outcome of running recovery against a (possibly crash-corrupted)
/// memory image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Whether a transaction was in flight (`logged_bit == 1`).
    pub tx_in_flight: bool,
    /// Number of undo entries applied.
    pub entries_applied: u64,
    /// Total bytes restored from the log.
    pub bytes_restored: u64,
}

/// Applies write-ahead-logging recovery to `space`.
///
/// If `logged_bit` is set, every logged old value is written back over
/// its target address (undoing the interrupted transaction), then the
/// bit is cleared. If the bit is clear, the image is already consistent
/// and nothing is modified.
///
/// This mirrors the paper's recovery procedure: recovery is pessimistic —
/// whenever the bit is set the undo log is applied in full, regardless of
/// how far the transaction had progressed.
///
/// ```
/// # use spp_pmem::{PmemEnv, Variant, recover};
/// # let env = PmemEnv::new(Variant::LogPSf);
/// let layout = env.log_layout();
/// let mut image = env.snapshot();
/// let report = recover(&mut image, &layout);
/// assert!(!report.tx_in_flight);
/// ```
pub fn recover(space: &mut Space, layout: &LogLayout) -> RecoveryReport {
    if space.read_u64(layout.logged_bit()) != 1 {
        return RecoveryReport {
            tx_in_flight: false,
            entries_applied: 0,
            bytes_restored: 0,
        };
    }
    let count = space.read_u64(layout.entry_count()).min(layout.capacity);
    let mut bytes = 0u64;
    for i in 0..count {
        let ie = layout.index_entry(i);
        let addr = PAddr::new(space.read_u64(ie));
        let len = space.read_u64(ie.offset(8)).min(ENTRY_MAX_LEN);
        let mut buf = vec![0u8; len as usize];
        space.read_bytes(layout.data_entry(i), &mut buf);
        space.write_bytes(addr, &buf);
        bytes += len;
    }
    space.write_u64(layout.logged_bit(), 0);
    RecoveryReport {
        tx_in_flight: true,
        entries_applied: count,
        bytes_restored: bytes,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn layout() -> LogLayout {
        LogLayout::contiguous(PAddr::new(64), 8)
    }

    #[test]
    fn contiguous_geometry() {
        let l = layout();
        assert_eq!(l.index, PAddr::new(128));
        // 8 entries * 16 B = 128 B of index = 2 blocks.
        assert_eq!(l.data, PAddr::new(256));
        assert_eq!(l.index_entry(3), PAddr::new(128 + 48));
        assert_eq!(l.data_entry(3), PAddr::new(256 + 192));
        assert_eq!(l.region_len(), 64 + 128 + 8 * 64);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn entry_bounds_checked() {
        let _ = layout().index_entry(8);
    }

    #[test]
    fn recovery_noop_when_idle() {
        let l = layout();
        let mut s = Space::new();
        s.write_u64(PAddr::new(4096), 42);
        let r = recover(&mut s, &l);
        assert!(!r.tx_in_flight);
        assert_eq!(s.read_u64(PAddr::new(4096)), 42);
    }

    #[test]
    fn recovery_applies_entries_and_clears_bit() {
        let l = layout();
        let mut s = Space::new();
        // Target currently holds the "new" (partial) value 99; log holds old 7.
        s.write_u64(PAddr::new(4096), 99);
        s.write_u64(l.index_entry(0), 4096);
        s.write_u64(l.index_entry(0).offset(8), 8);
        s.write_u64(l.data_entry(0), 7);
        s.write_u64(l.entry_count(), 1);
        s.write_u64(l.logged_bit(), 1);

        let r = recover(&mut s, &l);
        assert!(r.tx_in_flight);
        assert_eq!(r.entries_applied, 1);
        assert_eq!(r.bytes_restored, 8);
        assert_eq!(s.read_u64(PAddr::new(4096)), 7);
        assert_eq!(s.read_u64(l.logged_bit()), 0);
        // Idempotent: a second recovery is a no-op.
        let r2 = recover(&mut s, &l);
        assert!(!r2.tx_in_flight);
    }

    #[test]
    fn recovery_clamps_corrupt_count() {
        let l = layout();
        let mut s = Space::new();
        s.write_u64(l.logged_bit(), 1);
        s.write_u64(l.entry_count(), u64::MAX); // corrupt
        let r = recover(&mut s, &l);
        assert_eq!(r.entries_applied, l.capacity);
    }

    #[test]
    fn recovery_restores_full_block() {
        let l = layout();
        let mut s = Space::new();
        let target = PAddr::new(8192);
        let old: Vec<u8> = (0..64).collect();
        s.write_bytes(target, &[0xFFu8; 64]); // clobbered
        s.write_u64(l.index_entry(0), target.raw());
        s.write_u64(l.index_entry(0).offset(8), 64);
        s.write_bytes(l.data_entry(0), &old);
        s.write_u64(l.entry_count(), 1);
        s.write_u64(l.logged_bit(), 1);
        recover(&mut s, &l);
        let mut back = [0u8; 64];
        s.read_bytes(target, &mut back);
        assert_eq!(&back[..], &old[..]);
    }
}
