//! # spp-pmem — persistent-memory programming model
//!
//! The functional substrate of the `specpersist` reproduction of
//! *"Hiding the Long Latency of Persist Barriers Using Speculative
//! Execution"* (ISCA '17): a byte-addressable shadow memory standing in
//! for NVMM, a micro-op trace recorder, the Intel PMEM instruction
//! primitives (`clwb`, `clflushopt`, `pcommit`, `sfence`), write-ahead
//! logging transactions (§3.1 of the paper), and a crash simulator that
//! enumerates the NVMM images a failure could leave behind.
//!
//! ## Quick tour
//!
//! ```
//! use spp_pmem::{CrashSim, PmemEnv, Variant, recover};
//!
//! // Program against the environment; the build variant gates which
//! // persistence machinery is emitted (Fig. 8's Base/Log/Log+P/Log+P+Sf).
//! let mut env = PmemEnv::new(Variant::LogPSf);
//! let counter = env.alloc_block();
//! let base = env.snapshot();
//!
//! // A failure-safe increment via the four-step WAL protocol.
//! env.tx_begin(1);
//! env.tx_log(counter, 8);            // step 1: undo log, made durable
//! env.tx_set_logged();               // step 2: logged_bit := 1, durable
//! let v = env.load_u64(counter);
//! env.store_u64(counter, v + 1);     // step 3: mutate...
//! env.clwb(counter);                 //         ...and persist
//! env.tx_commit();                   // step 4: logged_bit := 0, durable
//!
//! // Crash anywhere in that trace: recovery always yields 0 or 1.
//! let trace = env.take_trace();
//! let layout = env.log_layout();
//! for crash in 0..=trace.events.len() {
//!     let sim = CrashSim::new(&base, &trace.events, crash);
//!     let mut img = sim.image_guaranteed_only();
//!     recover(&mut img, &layout);
//!     assert!(img.read_u64(counter) <= 1);
//! }
//! ```
//!
//! The recorded [`Trace`] is what `spp-cpu` replays through its pipeline
//! timing model; this crate never attributes cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Simulation hot paths must surface faults as typed errors, not abort.
#![warn(clippy::unwrap_used, clippy::expect_used)]

mod addr;
pub mod crash;
mod env;
mod event;
mod hash;
pub mod rng;
mod space;
mod undo;
mod variant;

pub use addr::{blocks_covering, BlockId, PAddr, BLOCK_SIZE};
pub use crash::{persist_boundaries, CrashSim};
pub use env::{PmemEnv, ROOT_SLOTS};
pub use event::{Event, SharedTrace, Trace, TraceCounts};
pub use hash::{FastHashBuilder, FastHasher};
pub use rng::{hash64, splitmix64};
pub use space::Space;
pub use undo::{recover, LogLayout, RecoveryReport, ENTRY_MAX_LEN, INDEX_STRIDE};
pub use variant::{FlushMode, Variant};
