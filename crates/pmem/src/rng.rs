//! The repository's shared deterministic mixing and hashing
//! primitives.
//!
//! Everything in the workspace that needs a seedable deterministic
//! stream — adversarial writeback schedules ([`crate::crash`]),
//! per-site hardware-fault streams (`spp-mem`), fuzz-matrix seed
//! derivation (`spp-bench`) — uses the *same* [`splitmix64`] mixer, so
//! streams are reproducible across crates and a seed printed by one
//! tool replays identically in another. [`hash64`] builds a 64-bit
//! content hash on top of it for integrity checks (the result-journal's
//! per-entry checksums).
//!
//! This module is defined here because `spp-pmem` is the root of the
//! workspace dependency graph; the canonical *public* location is the
//! re-export in `spp-core` (`spp_core::splitmix64` / `spp_core::hash64`),
//! which every downstream crate can reach.

/// The SplitMix64 mixer (Steele et al., the seeding function of the
/// xoshiro family): a statistically strong, invertible 64-bit mixer.
///
/// Feeding it a counter (`splitmix64(seed + n)`) yields the standard
/// SplitMix64 stream; the unit tests pin the published reference
/// vector so no copy of this function can drift silently.
pub const fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A 64-bit content hash: FNV-1a over the bytes, finished through
/// [`splitmix64`] to break FNV's weak avalanche on short inputs.
///
/// Not cryptographic — it defends against truncation, torn writes and
/// bit rot in journalled results, not against an adversary forging
/// entries.
pub fn hash64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325; // FNV-1a 64 offset basis
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3); // FNV-1a 64 prime
    }
    splitmix64(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The published SplitMix64 reference stream for seed 0 (the same
    /// vector used by the xoshiro authors' test suite). If any copy of
    /// the mixer drifts from this, seeds printed in past reports stop
    /// replaying.
    #[test]
    fn splitmix64_matches_the_published_vector() {
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(1), 0x910A_2DEC_8902_5CC1);
        assert_eq!(splitmix64(2), 0x9758_35DE_1C97_56CE);
        assert_eq!(splitmix64(u64::MAX), 0xE4D9_7177_1B65_2C20);
    }

    /// Chaining the mixer on its own output (state-walk form) is also
    /// pinned: both usage styles exist in the workspace.
    #[test]
    fn splitmix64_chained_stream_is_pinned() {
        let mut s = 0u64;
        let expect = [
            0xE220_A839_7B1D_CDAF_u64,
            0xA706_DD2F_4D19_7E6F,
            0x2382_75BC_38FC_BE91,
            0x2130_748A_AAC8_0268,
        ];
        for e in expect {
            s = splitmix64(s);
            assert_eq!(s, e);
        }
    }

    #[test]
    fn hash64_is_pinned_and_input_sensitive() {
        assert_eq!(hash64(b""), 0xC381_7C01_6BA4_FF30);
        assert_eq!(hash64(b"specpersist"), 0xE082_20CA_9428_5082);
        assert_eq!(hash64(b"journal-v1"), 0x9B2B_0858_CEC3_B425);
        // Single-byte and single-bit sensitivity.
        assert_ne!(hash64(b"journal-v1"), hash64(b"journal-v2"));
        assert_ne!(hash64(b"a"), hash64(b"b"));
        assert_ne!(hash64(b"ab"), hash64(b"ba"));
    }
}
