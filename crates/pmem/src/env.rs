//! The persistent-memory execution environment.
//!
//! [`PmemEnv`] is what workload code programs against: it provides
//! loads/stores into the shadow [`Space`], emits the micro-op trace
//! consumed by the timing simulator, gates persistence instructions by
//! build [`Variant`], and implements the four-step write-ahead-logging
//! transaction protocol of §3.1:
//!
//! 1. `tx_begin` + `tx_log*` — write undo records, make them durable;
//! 2. `tx_set_logged` — publish `logged_bit = 1` durably;
//! 3. workload stores + `clwb` — mutate and persist the structure;
//! 4. `tx_commit` — clear `logged_bit` durably.

use std::collections::HashSet;

use crate::addr::{blocks_covering, BlockId, PAddr, BLOCK_SIZE};
use crate::event::{Event, Trace};
use crate::hash::FastHashBuilder;
use crate::space::Space;
use crate::undo::{LogLayout, INDEX_STRIDE};
use crate::variant::Variant;

/// Number of 8-byte root-directory slots at address 0.
pub const ROOT_SLOTS: usize = 8;

const ROOT_DIR: PAddr = PAddr::new(0);
const LOG_HEADER: PAddr = PAddr::new(BLOCK_SIZE);
const DEFAULT_LOG_CAPACITY: u64 = 1024;

/// Micro-ops charged for an allocation (bump-pointer arithmetic).
const ALLOC_COMPUTE: u32 = 4;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TxState {
    Idle,
    Logging,
    Mutating,
}

/// The persistent-memory programming environment.
///
/// See the module docs for the transaction protocol. All memory
/// effects are functional and immediate (they update the shadow
/// [`Space`]); timing is attributed later by replaying the recorded
/// [`Trace`] through `spp-cpu`.
///
/// ```
/// use spp_pmem::{PmemEnv, Variant};
///
/// let mut env = PmemEnv::new(Variant::LogPSf);
/// let node = env.alloc_block();
/// env.tx_begin(0);
/// env.tx_log(node, 8);
/// env.tx_set_logged();
/// env.store_u64(node, 42);
/// env.clwb(node);
/// env.tx_commit();
/// assert_eq!(env.space().read_u64(node), 42);
/// assert!(env.trace().counts.pcommits >= 4);
/// ```
#[derive(Debug, Clone)]
pub struct PmemEnv {
    space: Space,
    variant: Variant,
    trace: Trace,
    recording: bool,
    next_alloc: u64,
    log_capacity: u64,
    log_count: u64,
    tx_state: TxState,
    tx_id: u64,
    logged: HashSet<BlockId, FastHashBuilder>,
    fresh: HashSet<BlockId, FastHashBuilder>,
    strict_checks: bool,
    flush_mode: crate::FlushMode,
}

impl PmemEnv {
    /// Creates an environment with the default undo-log capacity
    /// (1024 block entries).
    pub fn new(variant: Variant) -> Self {
        Self::with_log_capacity(variant, DEFAULT_LOG_CAPACITY)
    }

    /// Creates an environment with an explicit undo-log capacity.
    ///
    /// # Panics
    ///
    /// Panics if `log_capacity` is zero.
    pub fn with_log_capacity(variant: Variant, log_capacity: u64) -> Self {
        assert!(log_capacity > 0, "log capacity must be positive");
        let layout = LogLayout::contiguous(LOG_HEADER, log_capacity);
        let region_end = LOG_HEADER.raw() + layout.region_len();
        let next_alloc = region_end.div_ceil(4096) * 4096;
        PmemEnv {
            space: Space::new(),
            variant,
            trace: Trace::new(),
            recording: true,
            next_alloc,
            log_capacity,
            log_count: 0,
            tx_state: TxState::Idle,
            tx_id: 0,
            logged: HashSet::default(),
            fresh: HashSet::default(),
            strict_checks: cfg!(debug_assertions),
            flush_mode: crate::FlushMode::default(),
        }
    }

    /// The build variant this environment gates on.
    pub fn variant(&self) -> Variant {
        self.variant
    }

    /// Rebrands the environment to a different build variant.
    ///
    /// This is the harness's setup-cache escape hatch: the fast-forward
    /// population phase is functionally identical across variants except
    /// for the undo-log bytes it writes — and nothing reads those
    /// outside an open transaction — so one populated image can seed
    /// recordings of every variant. Switching is only sound while no
    /// transaction is open and no events have been recorded; both are
    /// asserted.
    ///
    /// # Panics
    ///
    /// Panics if a transaction is open or the trace is non-empty.
    pub fn set_variant(&mut self, v: Variant) {
        assert_eq!(
            self.tx_state,
            TxState::Idle,
            "cannot switch variant mid-transaction"
        );
        assert!(
            self.trace.is_empty(),
            "cannot switch variant after events were recorded"
        );
        self.variant = v;
    }

    /// Location of the undo log, for [`crate::recover`].
    pub fn log_layout(&self) -> LogLayout {
        LogLayout::contiguous(LOG_HEADER, self.log_capacity)
    }

    /// Whether events are currently being recorded into the trace.
    pub fn recording(&self) -> bool {
        self.recording
    }

    /// Enables or disables trace recording. The paper runs the
    /// `#InitOps` population phase in "fast-forward" (recording off) and
    /// records only the `#SimOps` measurement phase.
    pub fn set_recording(&mut self, on: bool) {
        self.recording = on;
    }

    /// Enables or disables the transactional write-coverage checks
    /// (defaults to on in debug builds). With checks on, a store during
    /// the mutation phase to a block that was neither undo-logged nor
    /// freshly allocated in this transaction panics — catching workload
    /// logging bugs that would make recovery unsound.
    pub fn set_strict_checks(&mut self, on: bool) {
        self.strict_checks = on;
    }

    /// The recorded trace so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Takes the recorded trace, leaving an empty one in place.
    pub fn take_trace(&mut self) -> Trace {
        std::mem::take(&mut self.trace)
    }

    /// The functional memory contents.
    pub fn space(&self) -> &Space {
        &self.space
    }

    /// Clones the functional memory contents (e.g. as a crash-simulation
    /// starting image).
    pub fn snapshot(&self) -> Space {
        self.space.clone()
    }

    fn emit(&mut self, ev: Event) {
        if self.recording {
            self.trace.push(ev);
        }
    }

    /// Emits a block writeback in the configured [`crate::FlushMode`].
    fn emit_flush(&mut self, base: PAddr) {
        debug_assert_eq!(base.block_offset(), 0);
        self.emit(match self.flush_mode {
            crate::FlushMode::Clwb => Event::Clwb { addr: base },
            crate::FlushMode::ClflushOpt => Event::ClflushOpt { addr: base },
            crate::FlushMode::Clflush => Event::Clflush { addr: base },
        });
    }

    // ---- allocation ------------------------------------------------

    /// Allocates `size` bytes, 8-byte aligned. Memory is never freed
    /// (the paper assumes deleted nodes are not immediately garbage
    /// collected so a failed transaction can reclaim them).
    pub fn alloc(&mut self, size: u64) -> PAddr {
        self.alloc_aligned(size, 8)
    }

    /// Allocates one 64-byte, block-aligned node (Table 1 sizes every
    /// node at one cache block).
    pub fn alloc_block(&mut self) -> PAddr {
        self.alloc_aligned(BLOCK_SIZE, BLOCK_SIZE)
    }

    /// Allocates `n` contiguous cache blocks, block-aligned.
    pub fn alloc_blocks(&mut self, n: u64) -> PAddr {
        self.alloc_aligned(n * BLOCK_SIZE, BLOCK_SIZE)
    }

    fn alloc_aligned(&mut self, size: u64, align: u64) -> PAddr {
        assert!(size > 0, "zero-size allocation");
        let base = self.next_alloc.div_ceil(align) * align;
        self.next_alloc = base + size;
        let addr = PAddr::new(base);
        if self.tx_state != TxState::Idle {
            for b in blocks_covering(addr, size) {
                self.fresh.insert(b);
            }
        }
        self.emit(Event::Compute(ALLOC_COMPUTE));
        addr
    }

    /// Bytes allocated so far (high-water mark of the heap).
    pub fn heap_used(&self) -> u64 {
        self.next_alloc
    }

    // ---- root directory ---------------------------------------------

    /// Address of root-directory slot `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= ROOT_SLOTS`.
    pub fn root_addr(slot: usize) -> PAddr {
        assert!(slot < ROOT_SLOTS, "root slot out of range");
        ROOT_DIR.offset(8 * slot as u64)
    }

    /// Loads the pointer stored in root slot `slot` (a dependent load).
    pub fn root(&mut self, slot: usize) -> PAddr {
        self.load_ptr(Self::root_addr(slot))
    }

    /// Stores a pointer into root slot `slot`.
    pub fn set_root(&mut self, slot: usize, a: PAddr) {
        self.store_u64(Self::root_addr(slot), a.raw());
    }

    // ---- loads, stores, compute --------------------------------------

    /// Emits `n` non-memory micro-ops.
    pub fn compute(&mut self, n: u32) {
        if n > 0 {
            self.emit(Event::Compute(n));
        }
    }

    /// Loads a `u64`, with no address dependence on earlier loads.
    pub fn load_u64(&mut self, addr: PAddr) -> u64 {
        self.emit(Event::Load {
            addr,
            size: 8,
            dep: false,
        });
        self.space.read_u64(addr)
    }

    /// Loads a pointer. Marked address-dependent: in the timing model it
    /// cannot issue before the previous load completes (pointer chasing).
    pub fn load_ptr(&mut self, addr: PAddr) -> PAddr {
        self.emit(Event::Load {
            addr,
            size: 8,
            dep: true,
        });
        PAddr::new(self.space.read_u64(addr))
    }

    /// Stores a `u64`.
    ///
    /// # Panics
    ///
    /// With strict checks enabled, panics if called during the mutation
    /// phase of a logged transaction on a block that was neither logged
    /// nor freshly allocated.
    pub fn store_u64(&mut self, addr: PAddr, value: u64) {
        self.check_store(addr);
        self.raw_store(addr, 8, value);
    }

    /// Stores a pointer.
    pub fn store_ptr(&mut self, addr: PAddr, value: PAddr) {
        self.store_u64(addr, value.raw());
    }

    /// Loads `buf.len()` bytes as a sequence of up-to-8-byte loads.
    /// `addr` must be 8-byte aligned.
    pub fn load_bytes(&mut self, addr: PAddr, buf: &mut [u8]) {
        assert_eq!(addr.raw() % 8, 0, "load_bytes requires 8-byte alignment");
        let mut off = 0usize;
        while off < buf.len() {
            let n = usize::min(8, buf.len() - off);
            let a = addr.offset(off as u64);
            self.emit(Event::Load {
                addr: a,
                size: n as u8,
                dep: false,
            });
            self.space.read_bytes(a, &mut buf[off..off + n]);
            off += n;
        }
    }

    /// Stores `buf` as a sequence of up-to-8-byte stores. `addr` must be
    /// 8-byte aligned.
    pub fn store_bytes(&mut self, addr: PAddr, buf: &[u8]) {
        assert_eq!(addr.raw() % 8, 0, "store_bytes requires 8-byte alignment");
        let mut off = 0usize;
        while off < buf.len() {
            let n = usize::min(8, buf.len() - off);
            let a = addr.offset(off as u64);
            self.check_store(a);
            let mut chunk = [0u8; 8];
            chunk[..n].copy_from_slice(&buf[off..off + n]);
            let value = u64::from_le_bytes(chunk);
            self.emit(Event::Store {
                addr: a,
                size: n as u8,
                value,
            });
            self.space.write_bytes(a, &buf[off..off + n]);
            off += n;
        }
    }

    fn raw_store(&mut self, addr: PAddr, size: u8, value: u64) {
        self.emit(Event::Store { addr, size, value });
        self.space.write_uint(addr, size, value);
    }

    fn check_store(&self, addr: PAddr) {
        if !self.strict_checks || !self.variant.has_logging() {
            return;
        }
        match self.tx_state {
            TxState::Idle => {}
            TxState::Logging => panic!(
                "store to {addr} during the logging phase: data mutations must come after \
                 tx_set_logged()"
            ),
            TxState::Mutating => {
                let b = addr.block();
                assert!(
                    self.logged.contains(&b) || self.fresh.contains(&b),
                    "store to unlogged, non-fresh block {b} ({addr}) during the mutation phase: \
                     recovery would be unsound"
                );
            }
        }
    }

    // ---- persistence instructions -------------------------------------

    /// Selects the instruction emitted for block writebacks (default
    /// `clwb`, the paper's choice; see [`crate::FlushMode`]).
    pub fn set_flush_mode(&mut self, mode: crate::FlushMode) {
        self.flush_mode = mode;
    }

    /// Writes the block containing `addr` back using the configured
    /// [`crate::FlushMode`] (emitted only in `Log+P` and `Log+P+Sf` builds).
    /// The default mode makes this a `clwb`.
    pub fn clwb(&mut self, addr: PAddr) {
        if self.variant.has_persist_ops() {
            let a = addr.block_base();
            self.emit(match self.flush_mode {
                crate::FlushMode::Clwb => Event::Clwb { addr: a },
                crate::FlushMode::ClflushOpt => Event::ClflushOpt { addr: a },
                crate::FlushMode::Clflush => Event::Clflush { addr: a },
            });
        }
    }

    /// `clflushopt` of the block containing `addr` (variant-gated like
    /// [`clwb`](Self::clwb)).
    pub fn clflushopt(&mut self, addr: PAddr) {
        if self.variant.has_persist_ops() {
            self.emit(Event::ClflushOpt {
                addr: addr.block_base(),
            });
        }
    }

    /// `pcommit` (variant-gated).
    pub fn pcommit(&mut self) {
        if self.variant.has_persist_ops() {
            self.emit(Event::Pcommit);
        }
    }

    /// `sfence` (emitted only in the `Log+P+Sf` build).
    pub fn sfence(&mut self) {
        if self.variant.has_fences() {
            self.emit(Event::Sfence);
        }
    }

    /// `mfence` (emitted only in the `Log+P+Sf` build).
    pub fn mfence(&mut self) {
        if self.variant.has_fences() {
            self.emit(Event::Mfence);
        }
    }

    /// The persist barrier of §2.2: `sfence; pcommit; sfence` in the
    /// full build, a bare `pcommit` in `Log+P`, nothing otherwise.
    pub fn persist_barrier(&mut self) {
        self.sfence();
        self.pcommit();
        self.sfence();
    }

    // ---- transactions --------------------------------------------------

    /// Is a transaction currently open?
    pub fn tx_active(&self) -> bool {
        self.tx_state != TxState::Idle
    }

    /// Begins transaction `id` (step 1 starts). In `Base` builds this
    /// only emits the (free) trace marker.
    ///
    /// # Panics
    ///
    /// Panics if a transaction is already open.
    pub fn tx_begin(&mut self, id: u64) {
        assert_eq!(
            self.tx_state,
            TxState::Idle,
            "nested transactions are not supported"
        );
        self.emit(Event::TxBegin(id));
        self.tx_id = id;
        if self.variant.has_logging() {
            self.tx_state = TxState::Logging;
            self.log_count = 0;
            self.logged.clear();
            self.fresh.clear();
        }
    }

    /// Undo-logs every cache block overlapping `[addr, addr + len)`.
    /// Blocks already logged in this transaction are skipped. No-op in
    /// `Base` builds.
    ///
    /// # Panics
    ///
    /// Panics if called outside the logging phase, or if the undo log
    /// capacity is exceeded.
    pub fn tx_log(&mut self, addr: PAddr, len: u64) {
        if !self.variant.has_logging() {
            return;
        }
        assert_eq!(
            self.tx_state,
            TxState::Logging,
            "tx_log must be called between tx_begin and tx_set_logged"
        );
        let layout = self.log_layout();
        for b in blocks_covering(addr, len) {
            if !self.logged.insert(b) {
                continue;
            }
            assert!(
                self.log_count < self.log_capacity,
                "undo log capacity exceeded"
            );
            let i = self.log_count;
            self.log_count += 1;
            // Index entry: target address and length.
            let ie = layout.index_entry(i);
            self.raw_store(ie, 8, b.base().raw());
            self.raw_store(ie.offset(8), 8, BLOCK_SIZE);
            // Copy the old block contents. The trace records the copy as
            // 8-byte load/store pairs (that is what the core executes);
            // the shadow memory takes the block in one bulk write, which
            // is equivalent because the data entry never aliases the
            // source block (the log region is reserved below the heap).
            let de = layout.data_entry(i);
            let mut blk = [0u8; BLOCK_SIZE as usize];
            self.space.read_bytes(b.base(), &mut blk);
            for j in 0..(BLOCK_SIZE / 8) {
                self.emit(Event::Load {
                    addr: b.base().offset(j * 8),
                    size: 8,
                    dep: false,
                });
                let off = (j * 8) as usize;
                let mut w = [0u8; 8];
                w.copy_from_slice(&blk[off..off + 8]);
                self.emit(Event::Store {
                    addr: de.offset(j * 8),
                    size: 8,
                    value: u64::from_le_bytes(w),
                });
                self.emit(Event::Compute(1));
            }
            self.space.write_bytes(de, &blk);
            // Persist the data slot now; index blocks are flushed once,
            // at tx_set_logged (they pack four entries per block).
            if self.variant.has_persist_ops() {
                self.emit_flush(de);
            }
            self.emit(Event::Compute(2));
        }
    }

    /// Undo-logs one whole cache block.
    pub fn tx_log_block(&mut self, block: BlockId) {
        self.tx_log(block.base(), BLOCK_SIZE);
    }

    /// Number of undo entries written by the open transaction so far.
    pub fn tx_logged_blocks(&self) -> u64 {
        self.log_count
    }

    /// Ends step 1 and performs step 2: persist the undo entries, then
    /// durably publish `entry_count` and `logged_bit = 1`.
    ///
    /// # Panics
    ///
    /// Panics if called outside the logging phase.
    pub fn tx_set_logged(&mut self) {
        if !self.variant.has_logging() {
            return;
        }
        assert_eq!(
            self.tx_state,
            TxState::Logging,
            "tx_set_logged without tx_begin"
        );
        // Flush the index blocks covering the entries written this
        // transaction (four packed entries per block).
        if self.variant.has_persist_ops() && self.log_count > 0 {
            let layout = self.log_layout();
            for b in blocks_covering(layout.index_entry(0), self.log_count * INDEX_STRIDE) {
                self.emit_flush(b.base());
            }
        }
        // Step 1 barrier: undo entries durable before the bit is set.
        self.persist_barrier();
        // Step 2: count and bit share the header block, so one persist
        // publishes both atomically.
        self.raw_store(LOG_HEADER.offset(8), 8, self.log_count);
        self.raw_store(LOG_HEADER, 8, 1);
        if self.variant.has_persist_ops() {
            self.emit_flush(LOG_HEADER.block_base());
        }
        self.persist_barrier();
        self.tx_state = TxState::Mutating;
    }

    /// Ends step 3 and performs step 4: persist the data updates (the
    /// workload has already issued its `clwb`s), then durably clear
    /// `logged_bit`.
    ///
    /// # Panics
    ///
    /// Panics if the transaction is not in its mutation phase (in logged
    /// builds).
    pub fn tx_commit(&mut self) {
        if self.variant.has_logging() {
            assert_eq!(
                self.tx_state,
                TxState::Mutating,
                "tx_commit without tx_set_logged"
            );
            // Step 3 barrier: data updates durable before the bit clears.
            self.persist_barrier();
            // Step 4: clear the bit.
            self.raw_store(LOG_HEADER, 8, 0);
            if self.variant.has_persist_ops() {
                self.emit_flush(LOG_HEADER.block_base());
            }
            self.persist_barrier();
            self.tx_state = TxState::Idle;
        }
        self.emit(Event::TxEnd(self.tx_id));
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn count_of(trace: &Trace, pred: impl Fn(&Event) -> bool) -> usize {
        trace.events.iter().filter(|e| pred(e)).count()
    }

    #[test]
    fn allocation_is_aligned_and_monotonic() {
        let mut env = PmemEnv::new(Variant::Base);
        let a = env.alloc_block();
        let b = env.alloc_block();
        assert_eq!(a.raw() % 64, 0);
        assert_eq!(b.raw() % 64, 0);
        assert!(b.raw() >= a.raw() + 64);
        assert!(a.raw() >= env.log_layout().region_len());
    }

    #[test]
    fn full_tx_emits_four_pcommits_and_eight_sfences() {
        let mut env = PmemEnv::new(Variant::LogPSf);
        let node = env.alloc_block();
        env.tx_begin(7);
        env.tx_log(node, 64);
        env.tx_set_logged();
        env.store_u64(node, 9);
        env.clwb(node);
        env.tx_commit();
        let t = env.trace();
        assert_eq!(t.counts.pcommits, 4);
        assert_eq!(t.counts.fences, 8);
        assert!(t.counts.flushes >= 4); // entry blocks + header twice + node
    }

    #[test]
    fn logp_variant_has_pcommits_but_no_fences() {
        let mut env = PmemEnv::new(Variant::LogP);
        let node = env.alloc_block();
        env.tx_begin(0);
        env.tx_log(node, 64);
        env.tx_set_logged();
        env.store_u64(node, 9);
        env.clwb(node);
        env.tx_commit();
        assert_eq!(env.trace().counts.pcommits, 4);
        assert_eq!(env.trace().counts.fences, 0);
        assert!(env.trace().counts.flushes > 0);
    }

    #[test]
    fn log_variant_has_logging_stores_but_no_persist_ops() {
        let mut env = PmemEnv::new(Variant::Log);
        let node = env.alloc_block();
        env.tx_begin(0);
        env.tx_log(node, 64);
        env.tx_set_logged();
        env.store_u64(node, 9);
        env.clwb(node);
        env.tx_commit();
        let c = env.trace().counts;
        assert_eq!(c.pcommits, 0);
        assert_eq!(c.fences, 0);
        assert_eq!(c.flushes, 0);
        assert!(c.stores > 8, "log copies should appear as stores");
    }

    #[test]
    fn base_variant_emits_only_data_accesses() {
        let mut env = PmemEnv::new(Variant::Base);
        let node = env.alloc_block();
        env.tx_begin(0);
        env.tx_log(node, 64); // no-op
        env.tx_set_logged(); // no-op
        env.store_u64(node, 9);
        env.clwb(node); // no-op
        env.tx_commit();
        let c = env.trace().counts;
        assert_eq!(c.stores, 1);
        assert_eq!(c.pcommits + c.fences + c.flushes, 0);
    }

    #[test]
    fn logging_copies_old_values_into_entries() {
        let mut env = PmemEnv::new(Variant::LogPSf);
        let node = env.alloc_block();
        env.store_u64(node, 0x1111);
        env.store_u64(node.offset(8), 0x2222);
        env.tx_begin(0);
        env.tx_log(node, 16);
        let layout = env.log_layout();
        assert_eq!(env.tx_logged_blocks(), 1);
        let ie = layout.index_entry(0);
        assert_eq!(env.space().read_u64(ie), node.raw());
        assert_eq!(env.space().read_u64(ie.offset(8)), 64);
        let de = layout.data_entry(0);
        assert_eq!(env.space().read_u64(de), 0x1111);
        assert_eq!(env.space().read_u64(de.offset(8)), 0x2222);
        env.tx_set_logged();
        assert_eq!(env.space().read_u64(layout.logged_bit()), 1);
        env.store_u64(node, 0x3333);
        env.clwb(node);
        env.tx_commit();
        assert_eq!(env.space().read_u64(layout.logged_bit()), 0);
    }

    #[test]
    fn duplicate_logging_is_deduplicated() {
        let mut env = PmemEnv::new(Variant::LogPSf);
        let node = env.alloc_block();
        env.tx_begin(0);
        env.tx_log(node, 64);
        env.tx_log(node.offset(32), 8);
        assert_eq!(env.tx_logged_blocks(), 1);
        env.tx_set_logged();
        env.store_u64(node, 1);
        env.clwb(node);
        env.tx_commit();
    }

    #[test]
    #[should_panic(expected = "unlogged")]
    fn strict_checks_catch_unlogged_store() {
        let mut env = PmemEnv::new(Variant::LogPSf);
        env.set_strict_checks(true);
        let a = env.alloc_block();
        let b = env.alloc_block();
        env.tx_begin(0);
        env.tx_log(a, 64);
        env.tx_set_logged();
        env.store_u64(b, 1); // b was never logged
    }

    #[test]
    fn fresh_allocations_are_exempt_from_logging() {
        let mut env = PmemEnv::new(Variant::LogPSf);
        env.set_strict_checks(true);
        let a = env.alloc_block();
        env.tx_begin(0);
        env.tx_log(a, 64);
        env.tx_set_logged();
        let fresh = env.alloc_block();
        env.store_u64(fresh, 123);
        env.clwb(fresh);
        env.store_u64(a, fresh.raw());
        env.clwb(a);
        env.tx_commit();
    }

    #[test]
    #[should_panic(expected = "logging phase")]
    fn strict_checks_catch_mutation_during_logging() {
        let mut env = PmemEnv::new(Variant::LogPSf);
        env.set_strict_checks(true);
        let a = env.alloc_block();
        env.tx_begin(0);
        env.store_u64(a, 1);
    }

    #[test]
    fn fast_forward_suppresses_events_but_updates_memory() {
        let mut env = PmemEnv::new(Variant::LogPSf);
        env.set_recording(false);
        let a = env.alloc_block();
        env.tx_begin(0);
        env.tx_log(a, 64);
        env.tx_set_logged();
        env.store_u64(a, 5);
        env.clwb(a);
        env.tx_commit();
        assert!(env.trace().is_empty());
        assert_eq!(env.space().read_u64(a), 5);
    }

    #[test]
    fn barrier_shape_per_variant() {
        for (variant, fences, pcommits) in [
            (Variant::Base, 0u64, 0u64),
            (Variant::Log, 0, 0),
            (Variant::LogP, 0, 1),
            (Variant::LogPSf, 2, 1),
        ] {
            let mut env = PmemEnv::new(variant);
            env.persist_barrier();
            assert_eq!(env.trace().counts.fences, fences, "{variant}");
            assert_eq!(env.trace().counts.pcommits, pcommits, "{variant}");
        }
    }

    #[test]
    fn roots_round_trip() {
        let mut env = PmemEnv::new(Variant::Base);
        let a = env.alloc_block();
        env.set_root(3, a);
        assert_eq!(env.root(3), a);
    }

    #[test]
    fn dependent_loads_are_marked() {
        let mut env = PmemEnv::new(Variant::Base);
        let a = env.alloc_block();
        let _ = env.load_ptr(a);
        let _ = env.load_u64(a);
        let deps: Vec<bool> = env
            .trace()
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Load { dep, .. } => Some(*dep),
                _ => None,
            })
            .collect();
        assert_eq!(deps, vec![true, false]);
    }

    #[test]
    fn byte_io_round_trips_and_chunks() {
        let mut env = PmemEnv::new(Variant::Base);
        let a = env.alloc(256);
        let data: Vec<u8> = (0..=255).collect();
        env.store_bytes(a, &data);
        let mut back = vec![0u8; 256];
        env.load_bytes(a, &mut back);
        assert_eq!(back, data);
        assert_eq!(env.trace().counts.stores, 32);
        assert_eq!(env.trace().counts.loads, 32);
    }

    #[test]
    fn clwb_targets_block_base() {
        let mut env = PmemEnv::new(Variant::LogP);
        let a = env.alloc_block();
        env.clwb(a.offset(17));
        assert_eq!(
            count_of(
                env.trace(),
                |e| matches!(e, Event::Clwb { addr } if *addr == a)
            ),
            1
        );
    }

    #[test]
    #[should_panic(expected = "capacity exceeded")]
    fn log_overflow_panics() {
        let mut env = PmemEnv::with_log_capacity(Variant::Log, 1);
        let a = env.alloc_blocks(2);
        env.tx_begin(0);
        env.tx_log(a, 128);
    }

    #[test]
    fn flush_mode_switches_emitted_instruction() {
        use crate::FlushMode;
        for mode in FlushMode::ALL {
            let mut env = PmemEnv::new(Variant::LogP);
            env.set_flush_mode(mode);
            let a = env.alloc_block();
            env.clwb(a);
            let got = env
                .trace()
                .events
                .iter()
                .find(|e| e.is_persist_op())
                .copied();
            let ok = matches!(
                (mode, got),
                (FlushMode::Clwb, Some(Event::Clwb { .. }))
                    | (FlushMode::ClflushOpt, Some(Event::ClflushOpt { .. }))
                    | (FlushMode::Clflush, Some(Event::Clflush { .. }))
            );
            assert!(ok, "mode {mode}: wrong event {got:?}");
        }
    }

    #[test]
    fn flush_mode_applies_to_log_machinery_too() {
        use crate::FlushMode;
        let mut env = PmemEnv::new(Variant::LogPSf);
        env.set_flush_mode(FlushMode::Clflush);
        let a = env.alloc_block();
        env.tx_begin(0);
        env.tx_log(a, 8);
        env.tx_set_logged();
        env.store_u64(a, 1);
        env.clwb(a);
        env.tx_commit();
        assert!(
            !env.trace()
                .events
                .iter()
                .any(|e| matches!(e, Event::Clwb { .. })),
            "no clwb may leak through in clflush mode"
        );
        assert!(env
            .trace()
            .events
            .iter()
            .any(|e| matches!(e, Event::Clflush { .. })));
    }
}
