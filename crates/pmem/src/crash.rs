//! Crash simulation: reconstructing possible NVMM images at a failure.
//!
//! In a write-back cache hierarchy, a dirty block *may* be written back
//! to memory at any time — so after a crash, each block's NVMM content is
//! a snapshot of that block at *some* point between its last *guaranteed*
//! persist and the crash, independently per block. A persist is
//! guaranteed only by the full `clwb; sfence; pcommit; sfence` dance
//! (§2.2): the first fence orders the writeback before the `pcommit`, and
//! the second fence awaits the `pcommit` acknowledgement.
//!
//! [`CrashSim`] replays a recorded trace up to a crash point, computes
//! each block's guaranteed-persist frontier, and materializes candidate
//! NVMM images by choosing a per-block cut anywhere between the frontier
//! and the crash. Recovery correctness tests assert that *every* such
//! image recovers to a consistent structure.
//!
//! Writebacks are modelled as 64-byte-atomic (a whole cache line reaches
//! the write-pending queue at once), the standard assumption in the
//! persistency-model literature; sub-line tearing is out of scope.
//!
//! The three flush instructions carry different ordering baggage
//! (§2.2): `clwb` and `clflushopt` are weakly ordered and need the
//! first `sfence` to order the writeback before a `pcommit`, while
//! legacy `clflush` is serializing with respect to a later `pcommit`
//! on its own — its writeback enters the ordered stage directly, and
//! only the trailing `sfence` (awaiting the `pcommit` acknowledgement)
//! is still required for a durability guarantee.

use std::collections::HashMap;

use crate::addr::BlockId;
use crate::event::Event;
use crate::rng::splitmix64;
use crate::space::Space;

/// One store affecting a block, in trace order.
#[derive(Debug, Clone, Copy)]
struct BlockStore {
    idx: usize,
    addr: crate::PAddr,
    size: u8,
    value: u64,
}

/// A crash-point analysis of a recorded trace.
///
/// ```
/// use spp_pmem::{CrashSim, PmemEnv, Variant, recover};
///
/// let mut env = PmemEnv::new(Variant::LogPSf);
/// let node = env.alloc_block();
/// let base = env.snapshot();
/// env.tx_begin(0);
/// env.tx_log(node, 8);
/// env.tx_set_logged();
/// env.store_u64(node, 42);
/// env.clwb(node);
/// env.tx_commit();
///
/// let trace = env.take_trace();
/// let layout = env.log_layout();
/// // Crash anywhere: the adversarial image must recover consistently.
/// for crash in 0..=trace.events.len() {
///     let sim = CrashSim::new(&base, &trace.events, crash);
///     let mut img = sim.image_guaranteed_only();
///     recover(&mut img, &layout);
///     let v = img.read_u64(node);
///     assert!(v == 0 || v == 42, "torn value {v}");
/// }
/// ```
#[derive(Debug)]
pub struct CrashSim<'a> {
    base: &'a Space,
    crash_idx: usize,
    stores: HashMap<BlockId, Vec<BlockStore>>,
    guaranteed: HashMap<BlockId, usize>,
}

impl<'a> CrashSim<'a> {
    /// Analyses `events[..crash_idx]` against the pre-trace image
    /// `base`. `base` is assumed fully durable (e.g. a freshly populated
    /// and quiesced structure).
    ///
    /// # Panics
    ///
    /// Panics if `crash_idx > events.len()`.
    pub fn new(base: &'a Space, events: &[Event], crash_idx: usize) -> Self {
        assert!(crash_idx <= events.len(), "crash index past end of trace");
        let mut stores: HashMap<BlockId, Vec<BlockStore>> = HashMap::new();
        let mut guaranteed: HashMap<BlockId, usize> = HashMap::new();
        // Writeback pipeline state: issued -> (sfence) -> ordered ->
        // (pcommit) -> in-flight -> (sfence) -> guaranteed.
        let mut issued: HashMap<BlockId, usize> = HashMap::new();
        let mut ordered: HashMap<BlockId, usize> = HashMap::new();
        let mut inflight: HashMap<BlockId, usize> = HashMap::new();

        for (idx, ev) in events[..crash_idx].iter().enumerate() {
            match *ev {
                Event::Store { addr, size, value } => {
                    debug_assert_eq!(
                        addr.raw() % 8,
                        0,
                        "crash analysis assumes 8-byte-aligned stores"
                    );
                    stores.entry(addr.block()).or_default().push(BlockStore {
                        idx,
                        addr,
                        size,
                        value,
                    });
                }
                Event::Clwb { addr } | Event::ClflushOpt { addr } => {
                    issued.insert(addr.block(), idx);
                }
                Event::Clflush { addr } => {
                    // Legacy clflush is ordered with respect to a later
                    // pcommit without an intervening sfence (Intel SDM):
                    // it skips the issued stage. Trace indices are
                    // monotone, so plain insert keeps the max.
                    ordered.insert(addr.block(), idx);
                }
                Event::Pcommit => {
                    for (b, i) in ordered.drain() {
                        let e = inflight.entry(b).or_insert(i);
                        *e = (*e).max(i);
                    }
                }
                Event::Sfence | Event::Mfence => {
                    for (b, i) in inflight.drain() {
                        let e = guaranteed.entry(b).or_insert(i);
                        *e = (*e).max(i);
                    }
                    for (b, i) in issued.drain() {
                        let e = ordered.entry(b).or_insert(i);
                        *e = (*e).max(i);
                    }
                }
                _ => {}
            }
        }
        CrashSim {
            base,
            crash_idx,
            stores,
            guaranteed,
        }
    }

    /// The crash point (exclusive event index) this analysis covers.
    pub fn crash_idx(&self) -> usize {
        self.crash_idx
    }

    /// The guaranteed-persist frontier of `block`, as an *exclusive*
    /// event index: every store to the block strictly before it is
    /// certainly in NVMM. Blocks never persisted return 0 — no store
    /// precedes index 0, so only the base image is certain. (The
    /// exclusive convention matters: a guaranteed flush at event `i`
    /// covers the stores before it, and an inclusive default of 0
    /// would silently claim a store at trace index 0 always persists —
    /// an off-by-one the Px86 litmus harness caught.)
    pub fn guarantee(&self, block: BlockId) -> usize {
        self.guaranteed.get(&block).copied().unwrap_or(0)
    }

    /// Builds an NVMM image choosing, for each dirty block, a cut point
    /// via `choose(block, frontier, crash_idx)`. The returned cut is
    /// clamped into `[frontier, crash_idx]`; all stores to the block
    /// strictly before the cut are applied (cuts are exclusive, like
    /// the frontier, so `frontier` itself applies exactly the
    /// guaranteed stores and `crash_idx` applies everything).
    pub fn image_with(&self, mut choose: impl FnMut(BlockId, usize, usize) -> usize) -> Space {
        let mut img = self.base.clone();
        for (&block, stores) in &self.stores {
            let g = self.guarantee(block);
            let cut = choose(block, g, self.crash_idx).clamp(g, self.crash_idx);
            for s in stores {
                if s.idx < cut {
                    img.write_uint(s.addr, s.size, s.value);
                }
            }
        }
        img
    }

    /// The adversarial "slowest possible writeback" image: each block
    /// contains only its guaranteed stores.
    pub fn image_guaranteed_only(&self) -> Space {
        self.image_with(|_, g, _| g)
    }

    /// A seeded adversarial reordering: every dirty block's cut point is
    /// drawn independently and uniformly from `[frontier, crash_idx]`
    /// by hashing `(seed, block)`, so blocks race ahead of or lag behind
    /// each other in every combination the persistency model allows
    /// (x86-TSO-persistency-style per-line writeback freedom).
    ///
    /// The schedule is a pure function of `(seed, block)` — identical
    /// seeds reproduce identical images, which is what makes fuzzing
    /// witnesses replayable.
    pub fn image_seeded(&self, seed: u64) -> Space {
        self.image_with(|b, g, c| {
            let x = splitmix64(seed ^ b.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15));
            g + (x as usize) % (c - g + 1).max(1)
        })
    }

    /// The "eager writeback" image: every store up to the crash reached
    /// NVMM (as if the cache wrote everything back instantly).
    pub fn image_everything(&self) -> Space {
        self.image_with(|_, _, crash| crash)
    }

    /// Blocks that were stored to before the crash, with their
    /// guaranteed frontiers (diagnostics and test enumeration).
    pub fn dirty_blocks(&self) -> impl Iterator<Item = (BlockId, usize)> + '_ {
        self.stores.keys().map(move |&b| (b, self.guarantee(b)))
    }

    /// The distinct cut points of `block`: its guaranteed frontier plus
    /// one cut just past every store at or after the frontier (cuts are
    /// exclusive). Any cut in `[frontier, crash_idx]` produces the same
    /// image as the largest cut point at or below it, so these exhaust
    /// the block's possible post-crash contents. A clean block has the
    /// single cut `0`.
    pub fn cut_points(&self, block: BlockId) -> Vec<usize> {
        let g = self.guarantee(block);
        let mut pts = vec![g];
        if let Some(stores) = self.stores.get(&block) {
            pts.extend(stores.iter().filter(|s| s.idx >= g).map(|s| s.idx + 1));
        }
        pts.dedup();
        pts
    }

    /// Exhaustively enumerates every post-crash image the per-block cut
    /// freedom allows — the cross product of [`CrashSim::cut_points`]
    /// over all dirty blocks — and calls `visit` on each. This is the
    /// ground truth the seeded sampler ([`CrashSim::image_seeded`]) and
    /// the litmus checker's reachable-state sets are pinned against.
    ///
    /// The enumeration is exponential in the number of dirty blocks;
    /// callers are expected to use it on small traces only (litmus
    /// programs, property tests).
    pub fn for_each_image(&self, mut visit: impl FnMut(&Space)) {
        let mut blocks: Vec<BlockId> = self.stores.keys().copied().collect();
        blocks.sort_unstable_by_key(|b| b.raw());
        let cuts: Vec<Vec<usize>> = blocks.iter().map(|&b| self.cut_points(b)).collect();
        let mut chosen: HashMap<BlockId, usize> = HashMap::new();
        self.enumerate_images(&blocks, &cuts, 0, &mut chosen, &mut visit);
    }

    fn enumerate_images(
        &self,
        blocks: &[BlockId],
        cuts: &[Vec<usize>],
        depth: usize,
        chosen: &mut HashMap<BlockId, usize>,
        visit: &mut impl FnMut(&Space),
    ) {
        if depth == blocks.len() {
            let img = self.image_with(|b, g, _| chosen.get(&b).copied().unwrap_or(g));
            visit(&img);
            return;
        }
        for &cut in &cuts[depth] {
            chosen.insert(blocks[depth], cut);
            self.enumerate_images(blocks, cuts, depth + 1, chosen, visit);
        }
        chosen.remove(&blocks[depth]);
    }
}

/// The sorted, deduplicated crash indices at which durability state can
/// change: just before and just after every persistence-relevant event
/// (flushes, `pcommit`, fences, transaction markers), clamped to
/// `0..=events.len()`. Crashing *between* two consecutive boundary
/// points is indistinguishable from crashing at the earlier one as far
/// as guarantees go (only plain stores happen in between, which are
/// never guaranteed), so sweeping these points exhausts every
/// guarantee-frontier configuration a trace can produce.
pub fn persist_boundaries(events: &[Event]) -> Vec<usize> {
    let mut points = vec![0, events.len()];
    for (i, ev) in events.iter().enumerate() {
        let interesting = ev.is_persist_op()
            || ev.is_fence()
            || matches!(ev, Event::TxBegin(_) | Event::TxEnd(_));
        if interesting {
            points.push(i);
            points.push(i + 1);
        }
    }
    points.sort_unstable();
    points.dedup();
    points.retain(|&p| p <= events.len());
    points
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::addr::PAddr;
    use crate::env::PmemEnv;
    use crate::variant::Variant;

    /// clwb alone (no fences/pcommit) guarantees nothing.
    #[test]
    fn clwb_without_barrier_guarantees_nothing() {
        let mut env = PmemEnv::new(Variant::LogP); // no fences in this build
        let a = env.alloc_block();
        let base = env.snapshot();
        env.store_u64(a, 5);
        env.clwb(a);
        env.pcommit();
        let trace = env.take_trace();
        let sim = CrashSim::new(&base, &trace.events, trace.events.len());
        assert_eq!(sim.guarantee(a.block()), 0);
        // Worst case: the store never made it.
        assert_eq!(sim.image_guaranteed_only().read_u64(a), 0);
        // Best case: it did.
        assert_eq!(sim.image_everything().read_u64(a), 5);
    }

    /// The full clwb;sfence;pcommit;sfence sequence guarantees the store.
    #[test]
    fn full_sequence_guarantees_store() {
        let mut env = PmemEnv::new(Variant::LogPSf);
        let a = env.alloc_block();
        let base = env.snapshot();
        env.store_u64(a, 5);
        env.clwb(a);
        env.sfence();
        env.pcommit();
        env.sfence();
        let trace = env.take_trace();
        let sim = CrashSim::new(&base, &trace.events, trace.events.len());
        assert!(sim.guarantee(a.block()) > 0);
        assert_eq!(sim.image_guaranteed_only().read_u64(a), 5);
    }

    /// Without the first sfence, the writeback may land after the
    /// pcommit flushed the queue: no guarantee.
    #[test]
    fn missing_first_fence_breaks_guarantee() {
        let mut env = PmemEnv::new(Variant::LogPSf);
        let a = env.alloc_block();
        let base = env.snapshot();
        env.store_u64(a, 5);
        env.clwb(a);
        env.pcommit(); // clwb not yet ordered!
        env.sfence();
        let trace = env.take_trace();
        let sim = CrashSim::new(&base, &trace.events, trace.events.len());
        assert_eq!(sim.guarantee(a.block()), 0);
    }

    /// Without the second sfence, the pcommit may not have completed.
    #[test]
    fn missing_second_fence_breaks_guarantee() {
        let mut env = PmemEnv::new(Variant::LogPSf);
        let a = env.alloc_block();
        let base = env.snapshot();
        env.store_u64(a, 5);
        env.clwb(a);
        env.sfence();
        env.pcommit();
        let trace = env.take_trace();
        let sim = CrashSim::new(&base, &trace.events, trace.events.len());
        assert_eq!(sim.guarantee(a.block()), 0);
    }

    /// A store after the clwb is not covered by the guarantee.
    #[test]
    fn later_store_not_guaranteed() {
        let mut env = PmemEnv::new(Variant::LogPSf);
        let a = env.alloc_block();
        let base = env.snapshot();
        env.store_u64(a, 5);
        env.clwb(a);
        env.sfence();
        env.pcommit();
        env.sfence();
        env.store_u64(a, 9); // newer, unpersisted
        let trace = env.take_trace();
        let sim = CrashSim::new(&base, &trace.events, trace.events.len());
        let img = sim.image_guaranteed_only();
        assert_eq!(img.read_u64(a), 5);
        assert_eq!(sim.image_everything().read_u64(a), 9);
    }

    /// Blocks are independent: one may be stale while another is fresh.
    #[test]
    fn per_block_independence() {
        let mut env = PmemEnv::new(Variant::LogPSf);
        let a = env.alloc_block();
        let b = env.alloc_block();
        let base = env.snapshot();
        env.store_u64(a, 1);
        env.store_u64(b, 2);
        let trace = env.take_trace();
        let sim = CrashSim::new(&base, &trace.events, trace.events.len());
        let img = sim.image_with(|blk, g, crash| if blk == a.block() { crash } else { g });
        assert_eq!(img.read_u64(a), 1);
        assert_eq!(img.read_u64(b), 0);
    }

    /// Crash index bounds the visible stores even in the eager image.
    #[test]
    fn crash_idx_truncates() {
        let mut env = PmemEnv::new(Variant::Base);
        let a = env.alloc_block();
        let base = env.snapshot();
        env.store_u64(a, 1); // event 1 (alloc emitted a Compute first)
        env.store_u64(a, 2);
        let trace = env.take_trace();
        let store_idxs: Vec<usize> = trace
            .events
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e, Event::Store { .. }))
            .map(|(i, _)| i)
            .collect();
        let sim = CrashSim::new(&base, &trace.events, store_idxs[1]);
        assert_eq!(sim.image_everything().read_u64(a), 1);
    }

    #[test]
    fn image_with_clamps_wild_cuts() {
        let mut env = PmemEnv::new(Variant::Base);
        let a = env.alloc_block();
        let base = env.snapshot();
        env.store_u64(a, 1);
        let trace = env.take_trace();
        let sim = CrashSim::new(&base, &trace.events, trace.events.len());
        // A chooser returning usize::MAX is clamped to the crash point.
        let img = sim.image_with(|_, _, _| usize::MAX);
        assert_eq!(img.read_u64(a), 1);
    }

    #[test]
    #[should_panic(expected = "past end")]
    fn crash_idx_validated() {
        let base = Space::new();
        let _ = CrashSim::new(&base, &[], 1);
    }

    /// Legacy `clflush` is ordered before a later `pcommit` on its own:
    /// `clflush; pcommit; sfence` guarantees the store with no first
    /// fence, unlike `clwb`/`clflushopt`.
    #[test]
    fn flushmode_guarantees_diverge_without_first_fence() {
        use crate::FlushMode;
        for (mode, expect_guaranteed) in [
            (FlushMode::Clwb, false),
            (FlushMode::ClflushOpt, false),
            (FlushMode::Clflush, true),
        ] {
            let mut env = PmemEnv::new(Variant::LogPSf);
            env.set_flush_mode(mode);
            let a = env.alloc_block();
            let base = env.snapshot();
            env.store_u64(a, 5);
            env.clwb(a); // emits the configured flush instruction
            env.pcommit(); // no sfence between flush and pcommit
            env.sfence();
            let trace = env.take_trace();
            let sim = CrashSim::new(&base, &trace.events, trace.events.len());
            assert_eq!(
                sim.guarantee(a.block()) > 0,
                expect_guaranteed,
                "{mode}: flush; pcommit; sfence guarantee"
            );
        }
    }

    /// With the full `flush; sfence; pcommit; sfence` dance, all three
    /// flush modes guarantee the store identically.
    #[test]
    fn all_flushmodes_guarantee_with_full_barrier() {
        use crate::FlushMode;
        for mode in FlushMode::ALL {
            let mut env = PmemEnv::new(Variant::LogPSf);
            env.set_flush_mode(mode);
            let a = env.alloc_block();
            let base = env.snapshot();
            env.store_u64(a, 5);
            env.clwb(a);
            env.sfence();
            env.pcommit();
            env.sfence();
            let trace = env.take_trace();
            let sim = CrashSim::new(&base, &trace.events, trace.events.len());
            assert!(sim.guarantee(a.block()) > 0, "{mode}: full barrier");
            assert_eq!(sim.image_guaranteed_only().read_u64(a), 5, "{mode}");
        }
    }

    /// Even for clflush, the trailing sfence (pcommit acknowledgement)
    /// is still load-bearing: `clflush; pcommit` alone guarantees
    /// nothing.
    #[test]
    fn clflush_without_trailing_fence_not_guaranteed() {
        let mut env = PmemEnv::new(Variant::LogPSf);
        env.set_flush_mode(crate::FlushMode::Clflush);
        let a = env.alloc_block();
        let base = env.snapshot();
        env.store_u64(a, 5);
        env.clwb(a);
        env.pcommit();
        let trace = env.take_trace();
        let sim = CrashSim::new(&base, &trace.events, trace.events.len());
        assert_eq!(sim.guarantee(a.block()), 0);
    }

    /// A clflush with no pcommit at all is never guaranteed, fences or
    /// not: ordering is not durability.
    #[test]
    fn clflush_alone_is_not_durable() {
        let mut env = PmemEnv::new(Variant::LogPSf);
        env.set_flush_mode(crate::FlushMode::Clflush);
        let a = env.alloc_block();
        let base = env.snapshot();
        env.store_u64(a, 5);
        env.clwb(a);
        env.sfence();
        env.sfence();
        let trace = env.take_trace();
        let sim = CrashSim::new(&base, &trace.events, trace.events.len());
        assert_eq!(sim.guarantee(a.block()), 0);
    }

    #[test]
    fn seeded_images_are_deterministic_and_bounded() {
        let mut env = PmemEnv::new(Variant::LogPSf);
        let a = env.alloc_block();
        let b = env.alloc_block();
        let base = env.snapshot();
        env.store_u64(a, 1);
        env.store_u64(b, 2);
        env.store_u64(a, 3);
        let trace = env.take_trace();
        let sim = CrashSim::new(&base, &trace.events, trace.events.len());
        for seed in 0..64u64 {
            let img1 = sim.image_seeded(seed);
            let img2 = sim.image_seeded(seed);
            for addr in [a, b] {
                assert_eq!(img1.read_u64(addr), img2.read_u64(addr), "seed {seed}");
            }
            // Every per-block value must be one of that block's
            // prefix-consistent contents.
            assert!(matches!(img1.read_u64(a), 0 | 1 | 3));
            assert!(matches!(img1.read_u64(b), 0 | 2));
        }
        // With enough seeds, the cuts actually vary (not all-stale).
        let varied = (0..64u64).any(|s| sim.image_seeded(s).read_u64(a) != 0);
        assert!(varied, "seeded schedules never moved past the frontier");
    }

    #[test]
    fn seeded_image_respects_guarantee_frontier() {
        let mut env = PmemEnv::new(Variant::LogPSf);
        let a = env.alloc_block();
        let base = env.snapshot();
        env.store_u64(a, 5);
        env.clwb(a);
        env.sfence();
        env.pcommit();
        env.sfence();
        let trace = env.take_trace();
        let sim = CrashSim::new(&base, &trace.events, trace.events.len());
        for seed in 0..32u64 {
            assert_eq!(sim.image_seeded(seed).read_u64(a), 5, "seed {seed}");
        }
    }

    #[test]
    fn persist_boundaries_bracket_every_durability_event() {
        let mut env = PmemEnv::new(Variant::LogPSf);
        let a = env.alloc_block();
        env.tx_begin(0);
        env.tx_log(a, 8);
        env.tx_set_logged();
        env.store_u64(a, 1);
        env.clwb(a);
        env.tx_commit();
        let trace = env.take_trace();
        let pts = persist_boundaries(&trace.events);
        // Sorted, deduplicated, bounded.
        assert!(pts.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*pts.first().unwrap(), 0);
        assert_eq!(*pts.last().unwrap(), trace.events.len());
        // Every persist op / fence / tx marker is bracketed.
        for (i, ev) in trace.events.iter().enumerate() {
            if ev.is_persist_op()
                || ev.is_fence()
                || matches!(ev, Event::TxBegin(_) | Event::TxEnd(_))
            {
                assert!(pts.contains(&i), "missing point before event {i}");
                assert!(pts.contains(&(i + 1)), "missing point after event {i}");
            }
        }
    }

    #[test]
    fn cut_points_are_frontier_plus_later_stores() {
        let mut env = PmemEnv::new(Variant::LogPSf);
        let a = env.alloc_block();
        let base = env.snapshot();
        env.store_u64(a, 1);
        env.clwb(a);
        env.sfence();
        env.pcommit();
        env.sfence();
        env.store_u64(a, 2);
        env.store_u64(a, 3);
        let trace = env.take_trace();
        let sim = CrashSim::new(&base, &trace.events, trace.events.len());
        let g = sim.guarantee(a.block());
        assert!(g > 0);
        let pts = sim.cut_points(a.block());
        assert_eq!(pts.len(), 3, "frontier + two unguaranteed stores");
        assert_eq!(pts[0], g);
        assert!(pts.windows(2).all(|w| w[0] < w[1]));
        // A clean block exposes only the trivial cut.
        assert_eq!(
            sim.cut_points(BlockId::new(usize::MAX as u64 & !63)),
            vec![0]
        );
    }

    /// Exhaustive enumeration visits exactly the cross product of
    /// per-block prefix states.
    #[test]
    fn for_each_image_is_the_cut_cross_product() {
        let mut env = PmemEnv::new(Variant::LogPSf);
        let a = env.alloc_block();
        let b = env.alloc_block();
        let base = env.snapshot();
        env.store_u64(a, 1);
        env.store_u64(b, 10);
        env.store_u64(a, 2);
        let trace = env.take_trace();
        let sim = CrashSim::new(&base, &trace.events, trace.events.len());
        let mut states = std::collections::BTreeSet::new();
        sim.for_each_image(|img| {
            states.insert((img.read_u64(a), img.read_u64(b)));
        });
        // a ∈ {0, 1, 2} independently of b ∈ {0, 10}.
        let expect: std::collections::BTreeSet<(u64, u64)> = [0u64, 1, 2]
            .iter()
            .flat_map(|&x| [0u64, 10].iter().map(move |&y| (x, y)))
            .collect();
        assert_eq!(states, expect);
    }

    /// Satellite: the seeded sampler, swept over a modest seed range,
    /// produces *exactly* the state set the exhaustive enumeration
    /// produces — on every persist boundary of a tiny multi-block trace.
    /// This pins `image_seeded` to the ground truth the litmus checker's
    /// witness replay relies on.
    #[test]
    fn seeded_sweep_matches_exhaustive_enumeration() {
        let mut env = PmemEnv::new(Variant::LogPSf);
        let blocks: Vec<PAddr> = (0..4).map(|_| env.alloc_block()).collect();
        let base = env.snapshot();
        env.store_u64(blocks[0], 1);
        env.store_u64(blocks[1], 2);
        env.clwb(blocks[0]);
        env.sfence();
        env.store_u64(blocks[2], 3);
        env.pcommit();
        env.sfence();
        env.store_u64(blocks[3], 4);
        env.store_u64(blocks[0], 5);
        let trace = env.take_trace();
        for &crash in &persist_boundaries(&trace.events) {
            let sim = CrashSim::new(&base, &trace.events, crash);
            let state =
                |img: &Space| -> Vec<u64> { blocks.iter().map(|&p| img.read_u64(p)).collect() };
            let mut exhaustive = std::collections::BTreeSet::new();
            sim.for_each_image(|img| {
                exhaustive.insert(state(img));
            });
            let mut sampled = std::collections::BTreeSet::new();
            for seed in 0..4096u64 {
                sampled.insert(state(&sim.image_seeded(seed)));
            }
            assert_eq!(
                sampled, exhaustive,
                "crash {crash}: seeded sweep must cover exactly the exhaustive states"
            );
        }
    }

    #[test]
    fn dirty_blocks_reports_frontiers() {
        let mut env = PmemEnv::new(Variant::LogPSf);
        let a = env.alloc_block();
        let base = env.snapshot();
        env.store_u64(a, 5);
        env.clwb(a);
        env.sfence();
        env.pcommit();
        env.sfence();
        let trace = env.take_trace();
        let sim = CrashSim::new(&base, &trace.events, trace.events.len());
        let dirty: Vec<(BlockId, usize)> = sim.dirty_blocks().collect();
        assert_eq!(dirty.len(), 1);
        assert_eq!(dirty[0].0, a.block());
        assert!(dirty[0].1 > 0);
        let _ = PAddr::NULL; // silence unused import in some cfgs
    }
}
