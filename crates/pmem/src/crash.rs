//! Crash simulation: reconstructing possible NVMM images at a failure.
//!
//! In a write-back cache hierarchy, a dirty block *may* be written back
//! to memory at any time — so after a crash, each block's NVMM content is
//! a snapshot of that block at *some* point between its last *guaranteed*
//! persist and the crash, independently per block. A persist is
//! guaranteed only by the full `clwb; sfence; pcommit; sfence` dance
//! (§2.2): the first fence orders the writeback before the `pcommit`, and
//! the second fence awaits the `pcommit` acknowledgement.
//!
//! [`CrashSim`] replays a recorded trace up to a crash point, computes
//! each block's guaranteed-persist frontier, and materializes candidate
//! NVMM images by choosing a per-block cut anywhere between the frontier
//! and the crash. Recovery correctness tests assert that *every* such
//! image recovers to a consistent structure.
//!
//! Writebacks are modelled as 64-byte-atomic (a whole cache line reaches
//! the write-pending queue at once), the standard assumption in the
//! persistency-model literature; sub-line tearing is out of scope.

use std::collections::HashMap;

use crate::addr::BlockId;
use crate::event::Event;
use crate::space::Space;

/// One store affecting a block, in trace order.
#[derive(Debug, Clone, Copy)]
struct BlockStore {
    idx: usize,
    addr: crate::PAddr,
    size: u8,
    value: u64,
}

/// A crash-point analysis of a recorded trace.
///
/// ```
/// use spp_pmem::{CrashSim, PmemEnv, Variant, recover};
///
/// let mut env = PmemEnv::new(Variant::LogPSf);
/// let node = env.alloc_block();
/// let base = env.snapshot();
/// env.tx_begin(0);
/// env.tx_log(node, 8);
/// env.tx_set_logged();
/// env.store_u64(node, 42);
/// env.clwb(node);
/// env.tx_commit();
///
/// let trace = env.take_trace();
/// let layout = env.log_layout();
/// // Crash anywhere: the adversarial image must recover consistently.
/// for crash in 0..=trace.events.len() {
///     let sim = CrashSim::new(&base, &trace.events, crash);
///     let mut img = sim.image_guaranteed_only();
///     recover(&mut img, &layout);
///     let v = img.read_u64(node);
///     assert!(v == 0 || v == 42, "torn value {v}");
/// }
/// ```
#[derive(Debug)]
pub struct CrashSim<'a> {
    base: &'a Space,
    crash_idx: usize,
    stores: HashMap<BlockId, Vec<BlockStore>>,
    guaranteed: HashMap<BlockId, usize>,
}

impl<'a> CrashSim<'a> {
    /// Analyses `events[..crash_idx]` against the pre-trace image
    /// `base`. `base` is assumed fully durable (e.g. a freshly populated
    /// and quiesced structure).
    ///
    /// # Panics
    ///
    /// Panics if `crash_idx > events.len()`.
    pub fn new(base: &'a Space, events: &[Event], crash_idx: usize) -> Self {
        assert!(crash_idx <= events.len(), "crash index past end of trace");
        let mut stores: HashMap<BlockId, Vec<BlockStore>> = HashMap::new();
        let mut guaranteed: HashMap<BlockId, usize> = HashMap::new();
        // Writeback pipeline state: issued -> (sfence) -> ordered ->
        // (pcommit) -> in-flight -> (sfence) -> guaranteed.
        let mut issued: HashMap<BlockId, usize> = HashMap::new();
        let mut ordered: HashMap<BlockId, usize> = HashMap::new();
        let mut inflight: HashMap<BlockId, usize> = HashMap::new();

        for (idx, ev) in events[..crash_idx].iter().enumerate() {
            match *ev {
                Event::Store { addr, size, value } => {
                    debug_assert_eq!(
                        addr.raw() % 8,
                        0,
                        "crash analysis assumes 8-byte-aligned stores"
                    );
                    stores.entry(addr.block()).or_default().push(BlockStore {
                        idx,
                        addr,
                        size,
                        value,
                    });
                }
                Event::Clwb { addr } | Event::ClflushOpt { addr } | Event::Clflush { addr } => {
                    issued.insert(addr.block(), idx);
                }
                Event::Pcommit => {
                    for (b, i) in ordered.drain() {
                        let e = inflight.entry(b).or_insert(i);
                        *e = (*e).max(i);
                    }
                }
                Event::Sfence | Event::Mfence => {
                    for (b, i) in inflight.drain() {
                        let e = guaranteed.entry(b).or_insert(i);
                        *e = (*e).max(i);
                    }
                    for (b, i) in issued.drain() {
                        let e = ordered.entry(b).or_insert(i);
                        *e = (*e).max(i);
                    }
                }
                _ => {}
            }
        }
        CrashSim {
            base,
            crash_idx,
            stores,
            guaranteed,
        }
    }

    /// The crash point (exclusive event index) this analysis covers.
    pub fn crash_idx(&self) -> usize {
        self.crash_idx
    }

    /// The guaranteed-persist frontier of `block`: every store to the
    /// block at or before this event index is certainly in NVMM. Blocks
    /// never persisted return 0 (only the base image is certain).
    pub fn guarantee(&self, block: BlockId) -> usize {
        self.guaranteed.get(&block).copied().unwrap_or(0)
    }

    /// Builds an NVMM image choosing, for each dirty block, a cut point
    /// via `choose(block, frontier, crash_idx)`. The returned cut is
    /// clamped into `[frontier, crash_idx]`; all stores to the block at
    /// or before the cut are applied.
    pub fn image_with(&self, mut choose: impl FnMut(BlockId, usize, usize) -> usize) -> Space {
        let mut img = self.base.clone();
        for (&block, stores) in &self.stores {
            let g = self.guarantee(block);
            let cut = choose(block, g, self.crash_idx).clamp(g, self.crash_idx);
            for s in stores {
                if s.idx <= cut {
                    img.write_uint(s.addr, s.size, s.value);
                }
            }
        }
        img
    }

    /// The adversarial "slowest possible writeback" image: each block
    /// contains only its guaranteed stores.
    pub fn image_guaranteed_only(&self) -> Space {
        self.image_with(|_, g, _| g)
    }

    /// The "eager writeback" image: every store up to the crash reached
    /// NVMM (as if the cache wrote everything back instantly).
    pub fn image_everything(&self) -> Space {
        self.image_with(|_, _, crash| crash)
    }

    /// Blocks that were stored to before the crash, with their
    /// guaranteed frontiers (diagnostics and test enumeration).
    pub fn dirty_blocks(&self) -> impl Iterator<Item = (BlockId, usize)> + '_ {
        self.stores.keys().map(move |&b| (b, self.guarantee(b)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PAddr;
    use crate::env::PmemEnv;
    use crate::variant::Variant;

    /// clwb alone (no fences/pcommit) guarantees nothing.
    #[test]
    fn clwb_without_barrier_guarantees_nothing() {
        let mut env = PmemEnv::new(Variant::LogP); // no fences in this build
        let a = env.alloc_block();
        let base = env.snapshot();
        env.store_u64(a, 5);
        env.clwb(a);
        env.pcommit();
        let trace = env.take_trace();
        let sim = CrashSim::new(&base, &trace.events, trace.events.len());
        assert_eq!(sim.guarantee(a.block()), 0);
        // Worst case: the store never made it.
        assert_eq!(sim.image_guaranteed_only().read_u64(a), 0);
        // Best case: it did.
        assert_eq!(sim.image_everything().read_u64(a), 5);
    }

    /// The full clwb;sfence;pcommit;sfence sequence guarantees the store.
    #[test]
    fn full_sequence_guarantees_store() {
        let mut env = PmemEnv::new(Variant::LogPSf);
        let a = env.alloc_block();
        let base = env.snapshot();
        env.store_u64(a, 5);
        env.clwb(a);
        env.sfence();
        env.pcommit();
        env.sfence();
        let trace = env.take_trace();
        let sim = CrashSim::new(&base, &trace.events, trace.events.len());
        assert!(sim.guarantee(a.block()) > 0);
        assert_eq!(sim.image_guaranteed_only().read_u64(a), 5);
    }

    /// Without the first sfence, the writeback may land after the
    /// pcommit flushed the queue: no guarantee.
    #[test]
    fn missing_first_fence_breaks_guarantee() {
        let mut env = PmemEnv::new(Variant::LogPSf);
        let a = env.alloc_block();
        let base = env.snapshot();
        env.store_u64(a, 5);
        env.clwb(a);
        env.pcommit(); // clwb not yet ordered!
        env.sfence();
        let trace = env.take_trace();
        let sim = CrashSim::new(&base, &trace.events, trace.events.len());
        assert_eq!(sim.guarantee(a.block()), 0);
    }

    /// Without the second sfence, the pcommit may not have completed.
    #[test]
    fn missing_second_fence_breaks_guarantee() {
        let mut env = PmemEnv::new(Variant::LogPSf);
        let a = env.alloc_block();
        let base = env.snapshot();
        env.store_u64(a, 5);
        env.clwb(a);
        env.sfence();
        env.pcommit();
        let trace = env.take_trace();
        let sim = CrashSim::new(&base, &trace.events, trace.events.len());
        assert_eq!(sim.guarantee(a.block()), 0);
    }

    /// A store after the clwb is not covered by the guarantee.
    #[test]
    fn later_store_not_guaranteed() {
        let mut env = PmemEnv::new(Variant::LogPSf);
        let a = env.alloc_block();
        let base = env.snapshot();
        env.store_u64(a, 5);
        env.clwb(a);
        env.sfence();
        env.pcommit();
        env.sfence();
        env.store_u64(a, 9); // newer, unpersisted
        let trace = env.take_trace();
        let sim = CrashSim::new(&base, &trace.events, trace.events.len());
        let img = sim.image_guaranteed_only();
        assert_eq!(img.read_u64(a), 5);
        assert_eq!(sim.image_everything().read_u64(a), 9);
    }

    /// Blocks are independent: one may be stale while another is fresh.
    #[test]
    fn per_block_independence() {
        let mut env = PmemEnv::new(Variant::LogPSf);
        let a = env.alloc_block();
        let b = env.alloc_block();
        let base = env.snapshot();
        env.store_u64(a, 1);
        env.store_u64(b, 2);
        let trace = env.take_trace();
        let sim = CrashSim::new(&base, &trace.events, trace.events.len());
        let img = sim.image_with(|blk, g, crash| if blk == a.block() { crash } else { g });
        assert_eq!(img.read_u64(a), 1);
        assert_eq!(img.read_u64(b), 0);
    }

    /// Crash index bounds the visible stores even in the eager image.
    #[test]
    fn crash_idx_truncates() {
        let mut env = PmemEnv::new(Variant::Base);
        let a = env.alloc_block();
        let base = env.snapshot();
        env.store_u64(a, 1); // event 1 (alloc emitted a Compute first)
        env.store_u64(a, 2);
        let trace = env.take_trace();
        let store_idxs: Vec<usize> = trace
            .events
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e, Event::Store { .. }))
            .map(|(i, _)| i)
            .collect();
        let sim = CrashSim::new(&base, &trace.events, store_idxs[1]);
        assert_eq!(sim.image_everything().read_u64(a), 1);
    }

    #[test]
    fn image_with_clamps_wild_cuts() {
        let mut env = PmemEnv::new(Variant::Base);
        let a = env.alloc_block();
        let base = env.snapshot();
        env.store_u64(a, 1);
        let trace = env.take_trace();
        let sim = CrashSim::new(&base, &trace.events, trace.events.len());
        // A chooser returning usize::MAX is clamped to the crash point.
        let img = sim.image_with(|_, _, _| usize::MAX);
        assert_eq!(img.read_u64(a), 1);
    }

    #[test]
    #[should_panic(expected = "past end")]
    fn crash_idx_validated() {
        let base = Space::new();
        let _ = CrashSim::new(&base, &[], 1);
    }

    #[test]
    fn dirty_blocks_reports_frontiers() {
        let mut env = PmemEnv::new(Variant::LogPSf);
        let a = env.alloc_block();
        let base = env.snapshot();
        env.store_u64(a, 5);
        env.clwb(a);
        env.sfence();
        env.pcommit();
        env.sfence();
        let trace = env.take_trace();
        let sim = CrashSim::new(&base, &trace.events, trace.events.len());
        let dirty: Vec<(BlockId, usize)> = sim.dirty_blocks().collect();
        assert_eq!(dirty.len(), 1);
        assert_eq!(dirty[0].0, a.block());
        assert!(dirty[0].1 > 0);
        let _ = PAddr::NULL; // silence unused import in some cfgs
    }
}
