//! Benchmark build variants (Fig. 8's successive additions).

use std::fmt;

/// Which failure-safety machinery a workload build includes.
///
/// The paper evaluates each benchmark in four successively richer builds
/// (Fig. 8). Only [`Variant::LogPSf`] is actually failure safe; the
/// others isolate the cost of each ingredient.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Variant {
    /// Original code: no logging, no persistence instructions.
    Base,
    /// Adds undo-logging code (`Log`).
    Log,
    /// Adds the PMEM instructions `clwb`/`clflushopt`/`pcommit`
    /// (`Log+P`), but no fences to order them.
    LogP,
    /// Adds `sfence` ordering (`Log+P+Sf`) — the correct, failure-safe
    /// build.
    LogPSf,
}

impl Variant {
    /// All four variants in Fig. 8 order.
    pub const ALL: [Variant; 4] = [Variant::Base, Variant::Log, Variant::LogP, Variant::LogPSf];

    /// Does this build execute the undo-logging code?
    pub fn has_logging(self) -> bool {
        self >= Variant::Log
    }

    /// Does this build emit `clwb`/`clflushopt`/`pcommit`?
    pub fn has_persist_ops(self) -> bool {
        self >= Variant::LogP
    }

    /// Does this build emit `sfence` ordering?
    pub fn has_fences(self) -> bool {
        self == Variant::LogPSf
    }

    /// Short label used in reports ("Base", "Log", "Log+P", "Log+P+Sf").
    pub fn label(self) -> &'static str {
        match self {
            Variant::Base => "Base",
            Variant::Log => "Log",
            Variant::LogP => "Log+P",
            Variant::LogPSf => "Log+P+Sf",
        }
    }
}

impl fmt::Display for Variant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Which x86 instruction the environment emits to write a cache block
/// back (§2.2). The paper uses `clwb`; `clflushopt` additionally evicts
/// the line (costing a re-fetch on the next touch); legacy `clflush`
/// serializes and "has much worse performance", which is why the paper
/// excludes it — the `repro flushmode` ablation quantifies that.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FlushMode {
    /// `clwb`: write back, keep the line (the paper's choice).
    #[default]
    Clwb,
    /// `clflushopt`: write back and evict.
    ClflushOpt,
    /// Legacy `clflush`: write back, evict, and serialize.
    Clflush,
}

impl FlushMode {
    /// All modes, fastest first.
    pub const ALL: [FlushMode; 3] = [FlushMode::Clwb, FlushMode::ClflushOpt, FlushMode::Clflush];

    /// Instruction mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FlushMode::Clwb => "clwb",
            FlushMode::ClflushOpt => "clflushopt",
            FlushMode::Clflush => "clflush",
        }
    }
}

impl fmt::Display for FlushMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn capability_ladder() {
        assert!(!Variant::Base.has_logging());
        assert!(Variant::Log.has_logging() && !Variant::Log.has_persist_ops());
        assert!(Variant::LogP.has_persist_ops() && !Variant::LogP.has_fences());
        assert!(Variant::LogPSf.has_fences() && Variant::LogPSf.has_logging());
    }

    #[test]
    fn labels() {
        let labels: Vec<_> = Variant::ALL.iter().map(|v| v.label()).collect();
        assert_eq!(labels, ["Base", "Log", "Log+P", "Log+P+Sf"]);
    }
}
