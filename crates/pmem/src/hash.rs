//! A fast, deterministic hasher for internal integer-keyed tables.
//!
//! The shadow memory and the transaction machinery key several hot
//! tables by addresses or block ids (plain `u64` newtypes). The standard
//! library's default SipHash is DoS-resistant but costs tens of cycles
//! per lookup, which dominates trace recording. These tables never hold
//! attacker-controlled keys, and determinism is a *requirement* here
//! (the harness asserts byte-identical output across runs), so a fixed
//! multiplicative hash is both faster and more appropriate.
//!
//! The mixing function is the Fx (Firefox/rustc) construction: xor the
//! word in, multiply by a large odd constant. The multiply pushes
//! entropy into the high bits, which is what hashbrown's control bytes
//! consume.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Fx hash (2^64 / golden ratio,
/// forced odd).
const K: u64 = 0x517c_c1b7_2722_0a95;

/// A non-cryptographic, deterministic hasher for integer keys.
#[derive(Debug, Default, Clone, Copy)]
pub struct FastHasher(u64);

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback: fold 8 bytes at a time through the same mix.
        for chunk in bytes.chunks(8) {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(w));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(K);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// `BuildHasher` for [`FastHasher`] (zero-seeded, fully deterministic).
pub type FastHashBuilder = BuildHasherDefault<FastHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn deterministic_across_builders() {
        let a = FastHashBuilder::default().hash_one(0xDEAD_BEEFu64);
        let b = FastHashBuilder::default().hash_one(0xDEAD_BEEFu64);
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_keys_disperse() {
        let h = FastHashBuilder::default();
        let a = h.hash_one(1u64);
        let b = h.hash_one(2u64);
        assert_ne!(a, b);
        // High bits (hashbrown's control-byte source) must differ too.
        assert_ne!(a >> 57, b >> 57);
    }

    #[test]
    fn byte_stream_matches_word_stream() {
        let mut s = FastHasher::default();
        s.write(&7u64.to_le_bytes());
        let mut w = FastHasher::default();
        w.write_u64(7);
        assert_eq!(s.finish(), w.finish());
    }
}
