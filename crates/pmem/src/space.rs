//! Sparse shadow memory backing the simulated NVMM address space.

use std::collections::HashMap;

use crate::addr::PAddr;
use crate::hash::FastHashBuilder;

const PAGE_SIZE: u64 = 4096;

/// Pages below this index live in the direct-mapped table; higher pages
/// spill to a hash map. 2^20 pages = a 4 GiB direct window, far above
/// anything the bump allocator hands out, at a worst-case table cost of
/// 8 MiB of pointers.
const DIRECT_PAGES: u64 = 1 << 20;

type Page = Box<[u8; PAGE_SIZE as usize]>;

fn zero_page() -> Page {
    Box::new([0u8; PAGE_SIZE as usize])
}

/// A sparse, byte-addressable shadow memory.
///
/// `Space` holds the *functional* contents of the simulated persistent
/// address space: every store performed through
/// [`PmemEnv`](crate::PmemEnv) lands here immediately, independent of any
/// timing model. Crash simulation builds alternative `Space` images that
/// reflect which stores actually reached NVMM (see [`crate::crash`]).
///
/// Unwritten memory reads as zero, like fresh pages.
///
/// Internally the page table is direct-mapped (a `Vec` indexed by page
/// number) rather than hashed: the environment's bump allocator hands
/// out dense addresses from the bottom of the space, and the 8-byte
/// loads/stores of trace recording are by far the hottest operation in
/// the whole harness. Pages beyond the direct window (nothing in-tree
/// allocates there) fall back to a hash map so the byte API stays fully
/// general over the `u64` address space.
///
/// ```
/// use spp_pmem::{PAddr, Space};
/// let mut s = Space::new();
/// assert_eq!(s.read_u64(PAddr::new(64)), 0);
/// s.write_u64(PAddr::new(64), 7);
/// assert_eq!(s.read_u64(PAddr::new(64)), 7);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Space {
    direct: Vec<Option<Page>>,
    spill: HashMap<u64, Page, FastHashBuilder>,
    resident: usize,
}

impl Space {
    /// Creates an empty space; all bytes read as zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pages that have been materialized by writes.
    pub fn resident_pages(&self) -> usize {
        self.resident
    }

    #[inline]
    fn page(&self, idx: u64) -> Option<&[u8; PAGE_SIZE as usize]> {
        if idx < DIRECT_PAGES {
            match self.direct.get(idx as usize) {
                Some(Some(p)) => Some(p),
                _ => None,
            }
        } else {
            self.spill.get(&idx).map(|p| &**p)
        }
    }

    #[inline]
    fn page_mut(&mut self, idx: u64) -> &mut [u8; PAGE_SIZE as usize] {
        if idx < DIRECT_PAGES {
            let i = idx as usize;
            if i >= self.direct.len() {
                self.direct.resize_with(i + 1, || None);
            }
            let slot = &mut self.direct[i];
            if slot.is_none() {
                *slot = Some(zero_page());
                self.resident += 1;
            }
            match slot {
                Some(p) => p,
                None => unreachable!("slot materialized above"),
            }
        } else {
            self.resident += usize::from(!self.spill.contains_key(&idx));
            self.spill.entry(idx).or_insert_with(zero_page)
        }
    }

    /// Reads `buf.len()` bytes starting at `addr`. Missing pages read as
    /// zero.
    pub fn read_bytes(&self, addr: PAddr, buf: &mut [u8]) {
        let mut a = addr.raw();
        let mut done = 0usize;
        while done < buf.len() {
            let page = a / PAGE_SIZE;
            let off = (a % PAGE_SIZE) as usize;
            let n = usize::min(buf.len() - done, PAGE_SIZE as usize - off);
            match self.page(page) {
                Some(p) => buf[done..done + n].copy_from_slice(&p[off..off + n]),
                None => buf[done..done + n].fill(0),
            }
            done += n;
            a += n as u64;
        }
    }

    /// Writes `buf` starting at `addr`, materializing pages as needed.
    pub fn write_bytes(&mut self, addr: PAddr, buf: &[u8]) {
        let mut a = addr.raw();
        let mut done = 0usize;
        while done < buf.len() {
            let page = a / PAGE_SIZE;
            let off = (a % PAGE_SIZE) as usize;
            let n = usize::min(buf.len() - done, PAGE_SIZE as usize - off);
            self.page_mut(page)[off..off + n].copy_from_slice(&buf[done..done + n]);
            done += n;
            a += n as u64;
        }
    }

    /// Reads a little-endian `u64` at `addr` (no alignment requirement).
    #[inline]
    pub fn read_u64(&self, addr: PAddr) -> u64 {
        let a = addr.raw();
        let off = (a % PAGE_SIZE) as usize;
        if off <= PAGE_SIZE as usize - 8 {
            match self.page(a / PAGE_SIZE) {
                Some(p) => {
                    let mut b = [0u8; 8];
                    b.copy_from_slice(&p[off..off + 8]);
                    u64::from_le_bytes(b)
                }
                None => 0,
            }
        } else {
            let mut b = [0u8; 8];
            self.read_bytes(addr, &mut b);
            u64::from_le_bytes(b)
        }
    }

    /// Writes a little-endian `u64` at `addr`.
    #[inline]
    pub fn write_u64(&mut self, addr: PAddr, v: u64) {
        let a = addr.raw();
        let off = (a % PAGE_SIZE) as usize;
        if off <= PAGE_SIZE as usize - 8 {
            self.page_mut(a / PAGE_SIZE)[off..off + 8].copy_from_slice(&v.to_le_bytes());
        } else {
            self.write_bytes(addr, &v.to_le_bytes());
        }
    }

    /// Reads `size` bytes (1..=8) at `addr` as a zero-extended integer.
    ///
    /// # Panics
    ///
    /// Panics if `size` is 0 or greater than 8.
    #[inline]
    pub fn read_uint(&self, addr: PAddr, size: u8) -> u64 {
        assert!((1..=8).contains(&size), "size must be 1..=8");
        let a = addr.raw();
        let off = (a % PAGE_SIZE) as usize;
        let n = size as usize;
        let mut b = [0u8; 8];
        if off + n <= PAGE_SIZE as usize {
            if let Some(p) = self.page(a / PAGE_SIZE) {
                b[..n].copy_from_slice(&p[off..off + n]);
            }
        } else {
            self.read_bytes(addr, &mut b[..n]);
        }
        u64::from_le_bytes(b)
    }

    /// Writes the low `size` bytes (1..=8) of `v` at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is 0 or greater than 8.
    #[inline]
    pub fn write_uint(&mut self, addr: PAddr, size: u8, v: u64) {
        assert!((1..=8).contains(&size), "size must be 1..=8");
        let a = addr.raw();
        let off = (a % PAGE_SIZE) as usize;
        let n = size as usize;
        if off + n <= PAGE_SIZE as usize {
            self.page_mut(a / PAGE_SIZE)[off..off + n].copy_from_slice(&v.to_le_bytes()[..n]);
        } else {
            self.write_bytes(addr, &v.to_le_bytes()[..n]);
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn zero_fill_semantics() {
        let s = Space::new();
        let mut buf = [0xAAu8; 16];
        s.read_bytes(PAddr::new(12345), &mut buf);
        assert_eq!(buf, [0u8; 16]);
    }

    #[test]
    fn roundtrip_u64() {
        let mut s = Space::new();
        s.write_u64(PAddr::new(8), 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(s.read_u64(PAddr::new(8)), 0xDEAD_BEEF_CAFE_F00D);
    }

    #[test]
    fn cross_page_write_and_read() {
        let mut s = Space::new();
        let addr = PAddr::new(PAGE_SIZE - 3);
        let data: Vec<u8> = (0..10).collect();
        s.write_bytes(addr, &data);
        let mut back = [0u8; 10];
        s.read_bytes(addr, &mut back);
        assert_eq!(&back[..], &data[..]);
        assert_eq!(s.resident_pages(), 2);
    }

    #[test]
    fn cross_page_u64_round_trips() {
        let mut s = Space::new();
        // Straddles the page boundary, exercising the slow path.
        let addr = PAddr::new(PAGE_SIZE - 4);
        s.write_u64(addr, 0x0123_4567_89AB_CDEF);
        assert_eq!(s.read_u64(addr), 0x0123_4567_89AB_CDEF);
        assert_eq!(s.resident_pages(), 2);
    }

    #[test]
    fn partial_uint() {
        let mut s = Space::new();
        s.write_uint(PAddr::new(100), 2, 0xABCD);
        assert_eq!(s.read_uint(PAddr::new(100), 2), 0xABCD);
        // The neighbouring byte is untouched.
        assert_eq!(s.read_uint(PAddr::new(102), 1), 0);
    }

    #[test]
    fn spill_pages_beyond_direct_window() {
        let mut s = Space::new();
        let far = PAddr::new(DIRECT_PAGES * PAGE_SIZE + 24);
        assert_eq!(s.read_u64(far), 0);
        s.write_u64(far, 99);
        assert_eq!(s.read_u64(far), 99);
        assert_eq!(s.resident_pages(), 1);
        // Rewriting the same spill page does not recount it.
        s.write_u64(far.offset(8), 100);
        assert_eq!(s.resident_pages(), 1);
        let snap = s.clone();
        assert_eq!(snap.read_u64(far), 99);
    }

    #[test]
    fn clone_is_independent() {
        let mut s = Space::new();
        s.write_u64(PAddr::new(0), 1);
        let snap = s.clone();
        s.write_u64(PAddr::new(0), 2);
        assert_eq!(snap.read_u64(PAddr::new(0)), 1);
        assert_eq!(s.read_u64(PAddr::new(0)), 2);
    }

    #[test]
    #[should_panic(expected = "size must be")]
    fn uint_size_validated() {
        let s = Space::new();
        let _ = s.read_uint(PAddr::new(0), 9);
    }
}
