//! Sparse shadow memory backing the simulated NVMM address space.

use std::collections::HashMap;

use crate::addr::PAddr;

const PAGE_SIZE: u64 = 4096;

/// A sparse, byte-addressable shadow memory.
///
/// `Space` holds the *functional* contents of the simulated persistent
/// address space: every store performed through
/// [`PmemEnv`](crate::PmemEnv) lands here immediately, independent of any
/// timing model. Crash simulation builds alternative `Space` images that
/// reflect which stores actually reached NVMM (see [`crate::crash`]).
///
/// Unwritten memory reads as zero, like fresh pages.
///
/// ```
/// use spp_pmem::{PAddr, Space};
/// let mut s = Space::new();
/// assert_eq!(s.read_u64(PAddr::new(64)), 0);
/// s.write_u64(PAddr::new(64), 7);
/// assert_eq!(s.read_u64(PAddr::new(64)), 7);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Space {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE as usize]>>,
}

impl Space {
    /// Creates an empty space; all bytes read as zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pages that have been materialized by writes.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Reads `buf.len()` bytes starting at `addr`. Missing pages read as
    /// zero.
    pub fn read_bytes(&self, addr: PAddr, buf: &mut [u8]) {
        let mut a = addr.raw();
        let mut done = 0usize;
        while done < buf.len() {
            let page = a / PAGE_SIZE;
            let off = (a % PAGE_SIZE) as usize;
            let n = usize::min(buf.len() - done, PAGE_SIZE as usize - off);
            match self.pages.get(&page) {
                Some(p) => buf[done..done + n].copy_from_slice(&p[off..off + n]),
                None => buf[done..done + n].fill(0),
            }
            done += n;
            a += n as u64;
        }
    }

    /// Writes `buf` starting at `addr`, materializing pages as needed.
    pub fn write_bytes(&mut self, addr: PAddr, buf: &[u8]) {
        let mut a = addr.raw();
        let mut done = 0usize;
        while done < buf.len() {
            let page = a / PAGE_SIZE;
            let off = (a % PAGE_SIZE) as usize;
            let n = usize::min(buf.len() - done, PAGE_SIZE as usize - off);
            let p = self
                .pages
                .entry(page)
                .or_insert_with(|| Box::new([0u8; PAGE_SIZE as usize]));
            p[off..off + n].copy_from_slice(&buf[done..done + n]);
            done += n;
            a += n as u64;
        }
    }

    /// Reads a little-endian `u64` at `addr` (no alignment requirement).
    pub fn read_u64(&self, addr: PAddr) -> u64 {
        let mut b = [0u8; 8];
        self.read_bytes(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian `u64` at `addr`.
    pub fn write_u64(&mut self, addr: PAddr, v: u64) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// Reads `size` bytes (1..=8) at `addr` as a zero-extended integer.
    ///
    /// # Panics
    ///
    /// Panics if `size` is 0 or greater than 8.
    pub fn read_uint(&self, addr: PAddr, size: u8) -> u64 {
        assert!((1..=8).contains(&size), "size must be 1..=8");
        let mut b = [0u8; 8];
        self.read_bytes(addr, &mut b[..size as usize]);
        u64::from_le_bytes(b)
    }

    /// Writes the low `size` bytes (1..=8) of `v` at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is 0 or greater than 8.
    pub fn write_uint(&mut self, addr: PAddr, size: u8, v: u64) {
        assert!((1..=8).contains(&size), "size must be 1..=8");
        self.write_bytes(addr, &v.to_le_bytes()[..size as usize]);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn zero_fill_semantics() {
        let s = Space::new();
        let mut buf = [0xAAu8; 16];
        s.read_bytes(PAddr::new(12345), &mut buf);
        assert_eq!(buf, [0u8; 16]);
    }

    #[test]
    fn roundtrip_u64() {
        let mut s = Space::new();
        s.write_u64(PAddr::new(8), 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(s.read_u64(PAddr::new(8)), 0xDEAD_BEEF_CAFE_F00D);
    }

    #[test]
    fn cross_page_write_and_read() {
        let mut s = Space::new();
        let addr = PAddr::new(PAGE_SIZE - 3);
        let data: Vec<u8> = (0..10).collect();
        s.write_bytes(addr, &data);
        let mut back = [0u8; 10];
        s.read_bytes(addr, &mut back);
        assert_eq!(&back[..], &data[..]);
        assert_eq!(s.resident_pages(), 2);
    }

    #[test]
    fn partial_uint() {
        let mut s = Space::new();
        s.write_uint(PAddr::new(100), 2, 0xABCD);
        assert_eq!(s.read_uint(PAddr::new(100), 2), 0xABCD);
        // The neighbouring byte is untouched.
        assert_eq!(s.read_uint(PAddr::new(102), 1), 0);
    }

    #[test]
    fn clone_is_independent() {
        let mut s = Space::new();
        s.write_u64(PAddr::new(0), 1);
        let snap = s.clone();
        s.write_u64(PAddr::new(0), 2);
        assert_eq!(snap.read_u64(PAddr::new(0)), 1);
        assert_eq!(s.read_u64(PAddr::new(0)), 2);
    }

    #[test]
    #[should_panic(expected = "size must be")]
    fn uint_size_validated() {
        let s = Space::new();
        let _ = s.read_uint(PAddr::new(0), 9);
    }
}
