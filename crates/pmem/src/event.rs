//! The micro-op trace event model.
//!
//! Workloads execute *functionally* against a [`crate::PmemEnv`] and emit a
//! stream of `Event`s; the timing simulator (`spp-cpu`) replays the stream
//! through its pipeline model. This is the trace-driven substitution for
//! the paper's full-system MarssX86 simulator (see DESIGN.md §2).

use std::sync::Arc;

use crate::addr::PAddr;

/// One trace event. Every variant except the `Tx*` markers corresponds to
/// one or more retired micro-ops in the timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // the variant fields are self-describing
pub enum Event {
    /// `n` non-memory micro-ops (ALU/branch work between memory accesses).
    Compute(u32),
    /// A load of `size` bytes. `dep` marks address-dependent loads
    /// (pointer chasing): a dependent load cannot issue before the
    /// previous load in program order has completed.
    Load { addr: PAddr, size: u8, dep: bool },
    /// A store of `size` bytes of `value` (low bytes). The value is
    /// carried so crash simulation can reconstruct NVMM images; the
    /// timing model only uses the address.
    Store { addr: PAddr, size: u8, value: u64 },
    /// `clwb`: write the named cache block back without evicting it.
    Clwb { addr: PAddr },
    /// `clflushopt`: write the block back and evict it.
    ClflushOpt { addr: PAddr },
    /// `clflush`: legacy serializing flush (modelled for the ablation
    /// study only; the paper's workloads never use it).
    Clflush { addr: PAddr },
    /// `pcommit`: flush the memory-controller write-pending queue; acts
    /// as the persist barrier once fenced.
    Pcommit,
    /// `sfence`: store fence; additionally orders pending `clwb`/
    /// `clflushopt`/`pcommit` operations.
    Sfence,
    /// `mfence`: full fence (strong ordering; ends speculation like
    /// `sfence`, never speculatively retired past in this model).
    Mfence,
    /// Marker: start of transactional operation `id`. Zero cost.
    TxBegin(u64),
    /// Marker: end of transactional operation `id`. Zero cost.
    TxEnd(u64),
}

impl Event {
    /// Number of micro-ops this event contributes to the committed
    /// instruction count (Fig. 9 metric).
    pub fn micro_ops(&self) -> u64 {
        match self {
            Event::Compute(n) => u64::from(*n),
            Event::TxBegin(_) | Event::TxEnd(_) => 0,
            _ => 1,
        }
    }

    /// Returns `true` for the PMEM persistence instructions
    /// (`clwb`/`clflushopt`/`clflush`/`pcommit`).
    pub fn is_persist_op(&self) -> bool {
        matches!(
            self,
            Event::Clwb { .. } | Event::ClflushOpt { .. } | Event::Clflush { .. } | Event::Pcommit
        )
    }

    /// Returns `true` for fences.
    pub fn is_fence(&self) -> bool {
        matches!(self, Event::Sfence | Event::Mfence)
    }
}

/// A recorded trace: the event stream plus summary counters.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// The event stream in program order.
    pub events: Vec<Event>,
    /// Summary counters, maintained incrementally as events are pushed.
    pub counts: TraceCounts,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event, updating the counters.
    pub fn push(&mut self, ev: Event) {
        self.counts.tally(&ev);
        self.events.push(ev);
    }

    /// Number of events (not micro-ops) recorded.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Freezes the trace into an immutable, cheaply clonable form that
    /// can be replayed concurrently from many simulator threads.
    ///
    /// Wraps the event vector as-is (no reallocation): traces run to
    /// tens of millions of events, and copying them into a fresh
    /// allocation would rival the cost of recording.
    pub fn into_shared(self) -> SharedTrace {
        SharedTrace {
            events: Arc::new(self.events),
            counts: self.counts,
        }
    }
}

/// An immutable recorded trace behind an [`Arc`]: recording happens
/// once, then every simulator configuration replays the same events
/// without copying. Cloning is a reference-count bump.
#[derive(Debug, Clone)]
pub struct SharedTrace {
    /// The event stream in program order.
    pub events: Arc<Vec<Event>>,
    /// Summary counters of the stream.
    pub counts: TraceCounts,
}

/// Micro-op counters by class, used for the Fig. 9 instruction-count
/// ratios and the Fig. 12 store counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceCounts {
    /// Non-memory micro-ops.
    pub compute: u64,
    /// Load micro-ops.
    pub loads: u64,
    /// Store micro-ops.
    pub stores: u64,
    /// `clwb` + `clflushopt` + `clflush` micro-ops.
    pub flushes: u64,
    /// `pcommit` micro-ops.
    pub pcommits: u64,
    /// `sfence` + `mfence` micro-ops.
    pub fences: u64,
    /// Transactions started.
    pub transactions: u64,
}

impl TraceCounts {
    fn tally(&mut self, ev: &Event) {
        match ev {
            Event::Compute(n) => self.compute += u64::from(*n),
            Event::Load { .. } => self.loads += 1,
            Event::Store { .. } => self.stores += 1,
            Event::Clwb { .. } | Event::ClflushOpt { .. } | Event::Clflush { .. } => {
                self.flushes += 1
            }
            Event::Pcommit => self.pcommits += 1,
            Event::Sfence | Event::Mfence => self.fences += 1,
            Event::TxBegin(_) => self.transactions += 1,
            Event::TxEnd(_) => {}
        }
    }

    /// Total committed micro-ops.
    pub fn total(&self) -> u64 {
        self.compute + self.loads + self.stores + self.flushes + self.pcommits + self.fences
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn micro_op_weights() {
        assert_eq!(Event::Compute(5).micro_ops(), 5);
        assert_eq!(Event::TxBegin(1).micro_ops(), 0);
        assert_eq!(Event::Pcommit.micro_ops(), 1);
        assert_eq!(
            Event::Load {
                addr: PAddr::new(0),
                size: 8,
                dep: false
            }
            .micro_ops(),
            1
        );
    }

    #[test]
    fn classification() {
        assert!(Event::Clwb {
            addr: PAddr::new(0)
        }
        .is_persist_op());
        assert!(Event::Pcommit.is_persist_op());
        assert!(!Event::Sfence.is_persist_op());
        assert!(Event::Sfence.is_fence());
        assert!(Event::Mfence.is_fence());
        assert!(!Event::Compute(1).is_fence());
    }

    #[test]
    fn counters_accumulate() {
        let mut t = Trace::new();
        t.push(Event::TxBegin(0));
        t.push(Event::Compute(3));
        t.push(Event::Store {
            addr: PAddr::new(64),
            size: 8,
            value: 1,
        });
        t.push(Event::Clwb {
            addr: PAddr::new(64),
        });
        t.push(Event::Sfence);
        t.push(Event::Pcommit);
        t.push(Event::Sfence);
        t.push(Event::TxEnd(0));
        assert_eq!(t.counts.compute, 3);
        assert_eq!(t.counts.stores, 1);
        assert_eq!(t.counts.flushes, 1);
        assert_eq!(t.counts.pcommits, 1);
        assert_eq!(t.counts.fences, 2);
        assert_eq!(t.counts.transactions, 1);
        assert_eq!(t.counts.total(), 3 + 1 + 1 + 1 + 2);
        assert_eq!(t.len(), 8);
    }

    #[test]
    fn shared_trace_preserves_events_and_counts() {
        let mut t = Trace::new();
        t.push(Event::Compute(7));
        t.push(Event::Store {
            addr: PAddr::new(64),
            size: 8,
            value: 2,
        });
        t.push(Event::Pcommit);
        let events = t.events.clone();
        let counts = t.counts;
        let shared = t.into_shared();
        assert_eq!(&shared.events[..], &events[..]);
        assert_eq!(shared.counts, counts);
        // Clones alias the same allocation.
        let c = shared.clone();
        assert!(Arc::ptr_eq(&shared.events, &c.events));
    }
}
