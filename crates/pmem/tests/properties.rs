//! Property tests for the pmem substrate: crash-image soundness and
//! recovery correctness under randomized programs and crash points.

use proptest::prelude::*;
use spp_pmem::{recover, CrashSim, PmemEnv, Variant, BLOCK_SIZE};

/// A tiny random "program": a sequence of failure-safe transactions,
/// each updating a random subset of a small array of persistent cells.
#[derive(Debug, Clone)]
struct TxOp {
    cells: Vec<(usize, u64)>, // (cell index, new value)
}

fn tx_ops(n_cells: usize) -> impl Strategy<Value = Vec<TxOp>> {
    prop::collection::vec(
        prop::collection::vec((0..n_cells, any::<u64>()), 1..4).prop_map(|cells| TxOp { cells }),
        1..6,
    )
}

/// Runs the transactions against a fresh env and returns everything a
/// crash test needs.
fn run_program(
    variant: Variant,
    n_cells: usize,
    ops: &[TxOp],
) -> (
    PmemEnv,
    spp_pmem::Space,
    Vec<spp_pmem::PAddr>,
    spp_pmem::Trace,
) {
    let mut env = PmemEnv::new(variant);
    let cells: Vec<_> = (0..n_cells).map(|_| env.alloc_block()).collect();
    // Initial values: cell i holds i, fully persisted before recording.
    env.set_recording(false);
    for (i, &c) in cells.iter().enumerate() {
        env.store_u64(c, i as u64);
    }
    env.set_recording(true);
    let base = env.snapshot();
    for (id, op) in ops.iter().enumerate() {
        env.tx_begin(id as u64);
        for &(i, _) in &op.cells {
            env.tx_log(cells[i], 8);
        }
        env.tx_set_logged();
        for &(i, v) in &op.cells {
            env.store_u64(cells[i], v);
            env.clwb(cells[i]);
        }
        env.tx_commit();
    }
    let trace = env.take_trace();
    (env, base, cells, trace)
}

/// Computes the set of acceptable post-recovery states: after any prefix
/// of committed transactions (each transaction is atomic).
fn acceptable_states(n_cells: usize, ops: &[TxOp]) -> Vec<Vec<u64>> {
    let mut states = Vec::with_capacity(ops.len() + 1);
    let mut cur: Vec<u64> = (0..n_cells as u64).collect();
    states.push(cur.clone());
    for op in ops {
        for &(i, v) in &op.cells {
            cur[i] = v;
        }
        states.push(cur.clone());
    }
    states
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The headline failure-safety property: in the Log+P+Sf build, an
    /// adversarial crash at ANY event boundary, with the slowest possible
    /// writebacks, recovers to a transaction-atomic state.
    #[test]
    fn wal_recovery_is_transaction_atomic(ops in tx_ops(4), crash_frac in 0.0f64..=1.0) {
        let (env, base, cells, trace) = run_program(Variant::LogPSf, 4, &ops);
        let layout = env.log_layout();
        let crash = ((trace.events.len() as f64) * crash_frac) as usize;
        let sim = CrashSim::new(&base, &trace.events, crash.min(trace.events.len()));
        let mut img = sim.image_guaranteed_only();
        recover(&mut img, &layout);
        let state: Vec<u64> = cells.iter().map(|&c| img.read_u64(c)).collect();
        let ok = acceptable_states(4, &ops).contains(&state);
        prop_assert!(ok, "recovered to non-atomic state {state:?}");
    }

    /// Same property under arbitrary (not just adversarial) per-block
    /// writeback schedules, derived from a random seed.
    #[test]
    fn wal_recovery_atomic_under_random_writebacks(
        ops in tx_ops(3),
        crash_frac in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let (env, base, cells, trace) = run_program(Variant::LogPSf, 3, &ops);
        let layout = env.log_layout();
        let crash = ((trace.events.len() as f64) * crash_frac) as usize;
        let sim = CrashSim::new(&base, &trace.events, crash.min(trace.events.len()));
        // Deterministic pseudo-random cut per block from the seed.
        let mut img = sim.image_with(|b, g, c| {
            let h = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(b.raw().wrapping_mul(0xBF58_476D_1CE4_E5B9));
            g + (h as usize) % (c - g + 1).max(1)
        });
        recover(&mut img, &layout);
        let state: Vec<u64> = cells.iter().map(|&c| img.read_u64(c)).collect();
        let ok = acceptable_states(3, &ops).contains(&state);
        prop_assert!(ok, "recovered to non-atomic state {state:?}");
    }

    /// Negative control: the Log+P build (no fences) is NOT failure safe
    /// in general — but recovery must still never produce a state outside
    /// the per-cell value universe (no wild writes from the log replay).
    #[test]
    fn recovery_never_writes_outside_targets(ops in tx_ops(3), crash_frac in 0.0f64..=1.0) {
        let (env, base, cells, trace) = run_program(Variant::LogP, 3, &ops);
        let layout = env.log_layout();
        let crash = ((trace.events.len() as f64) * crash_frac) as usize;
        let sim = CrashSim::new(&base, &trace.events, crash.min(trace.events.len()));
        let mut img = sim.image_guaranteed_only();
        recover(&mut img, &layout);
        // An untouched sentinel block far from the program's cells must
        // remain zero after recovery.
        let sentinel = cells.last().unwrap().offset(16 * BLOCK_SIZE);
        prop_assert_eq!(img.read_u64(sentinel), 0);
        let _ = base;
    }

    /// The eager image (everything written back) always equals the
    /// functional shadow memory at the crash point for stored cells.
    #[test]
    fn eager_image_matches_functional_state(ops in tx_ops(3)) {
        let (env, base, cells, trace) = run_program(Variant::LogPSf, 3, &ops);
        let sim = CrashSim::new(&base, &trace.events, trace.events.len());
        let img = sim.image_everything();
        for &c in &cells {
            prop_assert_eq!(img.read_u64(c), env.space().read_u64(c));
        }
    }

    /// Guarantee frontiers are monotone in the crash index.
    #[test]
    fn guarantee_frontier_is_monotone(ops in tx_ops(2)) {
        let (_env, base, cells, trace) = run_program(Variant::LogPSf, 2, &ops);
        let n = trace.events.len();
        let mut prev = vec![0usize; cells.len()];
        for crash in (0..=n).step_by((n / 16).max(1)) {
            let sim = CrashSim::new(&base, &trace.events, crash);
            for (i, &c) in cells.iter().enumerate() {
                let g = sim.guarantee(c.block());
                prop_assert!(g >= prev[i], "frontier went backwards");
                prev[i] = g;
            }
        }
    }
}
