//! Property tests for the pipeline: arbitrary event traces — including
//! pathological fence/pcommit patterns — must terminate, commit every
//! micro-op exactly once, and behave deterministically, with and
//! without speculative persistence.

use proptest::prelude::*;
use spp_cpu::{CpuConfig, Pipeline, SimResult, Simulator, SpConfig};
use spp_pmem::{Event, PAddr};

fn simulate(events: &[Event], cfg: &CpuConfig) -> SimResult {
    Simulator::new(events)
        .config(*cfg)
        .run()
        .expect("property traces must simulate cleanly")
}

/// Strategy: one arbitrary trace event over a small block universe.
fn arb_event() -> impl Strategy<Value = Event> {
    let addr = (0u64..64).prop_map(|b| PAddr::new(4096 + b * 64 + 8 * (b % 8)));
    prop_oneof![
        (1u32..20).prop_map(Event::Compute),
        (addr.clone(), any::<bool>()).prop_map(|(a, dep)| Event::Load {
            addr: a,
            size: 8,
            dep
        }),
        (addr.clone(), any::<u64>()).prop_map(|(a, v)| Event::Store {
            addr: a,
            size: 8,
            value: v
        }),
        addr.clone().prop_map(|a| Event::Clwb {
            addr: a.block_base()
        }),
        addr.clone().prop_map(|a| Event::ClflushOpt {
            addr: a.block_base()
        }),
        addr.prop_map(|a| Event::Clflush {
            addr: a.block_base()
        }),
        Just(Event::Pcommit),
        Just(Event::Sfence),
        Just(Event::Mfence),
        (0u64..8).prop_map(Event::TxBegin),
        (0u64..8).prop_map(Event::TxEnd),
    ]
}

fn arb_trace() -> impl Strategy<Value = Vec<Event>> {
    prop::collection::vec(arb_event(), 0..400)
}

fn total_uops(events: &[Event]) -> u64 {
    events.iter().map(|e| e.micro_ops()).sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Any trace terminates on the baseline core with exact commit
    /// accounting. (run() would hang on a deadlock; the pipeline's
    /// internal next-event assertion fires first.)
    #[test]
    fn baseline_commits_every_uop_exactly_once(events in arb_trace()) {
        let r = simulate(&events, &CpuConfig::baseline());
        prop_assert_eq!(r.cpu.committed_uops, total_uops(&events));
    }

    /// Same with speculative persistence — including traces whose fence
    /// patterns never match the combined opcode.
    #[test]
    fn sp_commits_every_uop_exactly_once(events in arb_trace()) {
        let r = simulate(&events, &CpuConfig::with_sp());
        prop_assert_eq!(r.cpu.committed_uops, total_uops(&events));
        prop_assert_eq!(r.cpu.rollbacks, 0);
    }

    /// SP with a tiny SSB and a single checkpoint still terminates and
    /// commits exactly (maximal structural-hazard pressure).
    #[test]
    fn constrained_sp_still_commits_exactly(events in arb_trace()) {
        let cfg = CpuConfig {
            sp: Some(SpConfig {
                ssb: spp_core::SsbConfig::table3(32),
                checkpoints: 1,
                bloom_bytes: 64,
                combine_barrier: false,
            }),
            ..CpuConfig::baseline()
        };
        let r = simulate(&events, &cfg);
        prop_assert_eq!(r.cpu.committed_uops, total_uops(&events));
    }

    /// Simulation is a pure function of (trace, config).
    #[test]
    fn simulation_is_deterministic(events in arb_trace()) {
        for cfg in [CpuConfig::baseline(), CpuConfig::with_sp()] {
            let a = simulate(&events, &cfg);
            let b = simulate(&events, &cfg);
            prop_assert_eq!(a.cpu.cycles, b.cpu.cycles);
            prop_assert_eq!(a.cpu.fetch_stall_cycles, b.cpu.fetch_stall_cycles);
            prop_assert_eq!(a.mc.nvmm_writes, b.mc.nvmm_writes);
            prop_assert_eq!(a.ssb.inserts, b.ssb.inserts);
        }
    }

    /// Cycles are monotone in work: appending events never reduces the
    /// cycle count.
    #[test]
    fn appending_work_never_speeds_things_up(
        events in arb_trace(),
        extra in arb_event(),
    ) {
        let cfg = CpuConfig::baseline();
        let a = simulate(&events, &cfg).cpu.cycles;
        let mut longer = events;
        longer.push(extra);
        let b = simulate(&longer, &cfg).cpu.cycles;
        prop_assert!(b >= a, "adding an event reduced cycles: {a} -> {b}");
    }

    /// Random coherence snoops mid-run: the pipeline may roll back any
    /// number of times but must still finish with exact accounting.
    #[test]
    fn random_snoops_preserve_commit_accounting(
        events in arb_trace(),
        snoop_blocks in prop::collection::vec(0u64..64, 1..8),
        period in 16usize..200,
    ) {
        let expected = total_uops(&events);
        let mut p = Pipeline::new(&events, CpuConfig::with_sp());
        let mut i = 0usize;
        let mut steps = 0usize;
        while !p.is_done() {
            p.step().unwrap();
            steps += 1;
            if steps.is_multiple_of(period) {
                let b = spp_pmem::PAddr::new(4096 + snoop_blocks[i % snoop_blocks.len()] * 64);
                p.inject_coherence(b.block());
                i += 1;
            }
            prop_assert!(steps < 5_000_000, "runaway simulation");
        }
        let r = p.result();
        prop_assert_eq!(r.cpu.committed_uops, expected);
    }
}
