//! Property: the probe boundary is impenetrable. A consumer may crash
//! at any point in the event stream — the simulation must not observe
//! it, and every counter of the `SimResult` must be identical to an
//! uninstrumented run.

use std::cell::Cell;
use std::rc::Rc;
use std::sync::Once;

use proptest::prelude::*;
use spp_cpu::{CpuConfig, SimResult, Simulator};
use spp_obs::{Probe, ProbeEvent, ProbeHandle};
use spp_pmem::{Event, PAddr};

/// A consumer that does real work per event and then detonates after a
/// seeded number of deliveries — the adversarial counterpart of
/// `NullProbe`.
struct ChaosProbe {
    seen: Rc<Cell<u64>>,
    fuse: u64,
    scratch: u64,
}

impl Probe for ChaosProbe {
    fn on(&mut self, ev: &ProbeEvent) {
        self.seen.set(self.seen.get() + 1);
        // Mix the event into live state so delivery cannot be elided.
        self.scratch = self
            .scratch
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(format!("{ev:?}").len() as u64);
        if self.seen.get() == self.fuse {
            panic!("chaos probe detonated (scratch {:#x})", self.scratch);
        }
    }
}

/// The chaos panic is expected; keep it out of the test log while
/// leaving every other panic (a genuine failure) loud.
fn quiet_expected_panics() {
    static QUIET: Once = Once::new();
    QUIET.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let expected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.contains("chaos probe"));
            if !expected {
                prev(info);
            }
        }));
    });
}

fn arb_event() -> impl Strategy<Value = Event> {
    let addr = (0u64..64).prop_map(|b| PAddr::new(4096 + b * 64 + 8 * (b % 8)));
    prop_oneof![
        (1u32..20).prop_map(Event::Compute),
        (addr.clone(), any::<bool>()).prop_map(|(a, dep)| Event::Load {
            addr: a,
            size: 8,
            dep
        }),
        (addr.clone(), any::<u64>()).prop_map(|(a, v)| Event::Store {
            addr: a,
            size: 8,
            value: v
        }),
        addr.prop_map(|a| Event::Clwb {
            addr: a.block_base()
        }),
        Just(Event::Pcommit),
        Just(Event::Sfence),
        (0u64..8).prop_map(Event::TxBegin),
        (0u64..8).prop_map(Event::TxEnd),
    ]
}

fn arb_trace() -> impl Strategy<Value = Vec<Event>> {
    prop::collection::vec(arb_event(), 0..300)
}

fn run(events: &[Event], cfg: CpuConfig, probe: ProbeHandle) -> SimResult {
    Simulator::new(events)
        .config(cfg)
        .probe(probe)
        .run()
        .expect("property traces must simulate cleanly")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A consumer that panics after an arbitrary number of events
    /// poisons its handle and nothing else: the instrumented run's
    /// result equals the uninstrumented run's, bit for bit.
    #[test]
    fn a_crashing_consumer_cannot_perturb_the_machine(
        events in arb_trace(),
        fuse in 1u64..400,
    ) {
        quiet_expected_panics();
        for cfg in [CpuConfig::baseline(), CpuConfig::with_sp()] {
            let plain = run(&events, cfg, ProbeHandle::disabled());

            let seen = Rc::new(Cell::new(0));
            let handle = ProbeHandle::new(ChaosProbe {
                seen: seen.clone(),
                fuse,
                scratch: 1,
            });
            let chaotic = run(&events, cfg, handle.clone());

            prop_assert_eq!(plain, chaotic,
                "a panicking probe changed the simulation");
            // The handle is poisoned exactly when the fuse was reached
            // before the event stream ran out.
            prop_assert_eq!(handle.is_poisoned(), seen.get() >= fuse);
            // Delivery stops at the detonation: never past the fuse.
            prop_assert!(seen.get() <= fuse);
        }
    }
}
