//! Micro-ops and the trace cursor that decodes events into them.

use spp_pmem::{BlockId, Event, PAddr};

/// One micro-op flowing through the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UopKind {
    /// One cycle of ALU/branch work.
    Compute,
    /// A load; `dep` loads cannot issue before the previous load
    /// completes (pointer chasing).
    Load {
        /// Granule address.
        addr: PAddr,
        /// Address-dependent on the previous load?
        dep: bool,
    },
    /// A store; data is written at retirement.
    Store {
        /// Granule address.
        addr: PAddr,
    },
    /// `clwb` of a block (posted at retirement).
    Clwb {
        /// Target block.
        block: BlockId,
    },
    /// `clflushopt` of a block (posted at retirement, evicts).
    ClflushOpt {
        /// Target block.
        block: BlockId,
    },
    /// Legacy `clflush`: flush + evict, and serializing — the next
    /// instruction cannot retire until the writeback is visible.
    Clflush {
        /// Target block.
        block: BlockId,
    },
    /// `pcommit` (posted at retirement; only fences wait for it).
    Pcommit,
    /// `sfence`.
    Sfence,
    /// `mfence`.
    Mfence,
}

impl UopKind {
    /// Does this micro-op occupy an LSQ slot?
    pub fn is_mem(&self) -> bool {
        matches!(self, UopKind::Load { .. } | UopKind::Store { .. })
    }

    /// Is this a fence?
    pub fn is_fence(&self) -> bool {
        matches!(self, UopKind::Sfence | UopKind::Mfence)
    }
}

/// A micro-op plus the trace position it decodes from (checkpoints
/// record trace positions for rollback).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Uop {
    /// The operation.
    pub kind: UopKind,
    /// Index of the source [`Event`] in the trace.
    pub trace_idx: usize,
}

/// Decodes a recorded event trace into micro-ops, expanding
/// `Compute(n)` lazily and supporting rollback repositioning.
#[derive(Debug, Clone)]
pub struct TraceCursor<'t> {
    events: &'t [Event],
    idx: usize,
    compute_left: u32,
}

impl<'t> TraceCursor<'t> {
    /// Starts decoding at the beginning of `events`.
    pub fn new(events: &'t [Event]) -> Self {
        TraceCursor {
            events,
            idx: 0,
            compute_left: 0,
        }
    }

    /// The next micro-op, or `None` at end of trace.
    pub fn next_uop(&mut self) -> Option<Uop> {
        loop {
            if self.compute_left > 0 {
                self.compute_left -= 1;
                return Some(Uop {
                    kind: UopKind::Compute,
                    trace_idx: self.idx - 1,
                });
            }
            let ev = self.events.get(self.idx)?;
            self.idx += 1;
            let trace_idx = self.idx - 1;
            let kind = match *ev {
                Event::Compute(n) => {
                    if n == 0 {
                        continue;
                    }
                    self.compute_left = n - 1;
                    UopKind::Compute
                }
                Event::Load { addr, dep, .. } => UopKind::Load { addr, dep },
                Event::Store { addr, .. } => UopKind::Store { addr },
                Event::Clwb { addr } => UopKind::Clwb {
                    block: addr.block(),
                },
                Event::ClflushOpt { addr } => UopKind::ClflushOpt {
                    block: addr.block(),
                },
                Event::Clflush { addr } => UopKind::Clflush {
                    block: addr.block(),
                },
                Event::Pcommit => UopKind::Pcommit,
                Event::Sfence => UopKind::Sfence,
                Event::Mfence => UopKind::Mfence,
                Event::TxBegin(_) | Event::TxEnd(_) => continue,
            };
            return Some(Uop { kind, trace_idx });
        }
    }

    /// Repositions to `event_idx` (rollback to a checkpoint).
    ///
    /// # Panics
    ///
    /// Panics if `event_idx` is beyond the trace.
    pub fn set_position(&mut self, event_idx: usize) {
        assert!(event_idx <= self.events.len(), "position beyond trace");
        self.idx = event_idx;
        self.compute_left = 0;
    }

    /// Current decode position (the index of the next [`Event`]): what
    /// [`set_position`](Self::set_position) restores after a rollback,
    /// so a multi-core harness can tell whether re-execution is making
    /// forward progress between rollbacks.
    pub fn position(&self) -> usize {
        self.idx
    }

    /// Exhausted?
    pub fn is_done(&self) -> bool {
        self.compute_left == 0 && self.idx >= self.events.len()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn compute_expansion() {
        let events = [Event::Compute(3), Event::Pcommit];
        let mut c = TraceCursor::new(&events);
        let mut kinds = Vec::new();
        while let Some(u) = c.next_uop() {
            kinds.push(u.kind);
        }
        assert_eq!(
            kinds,
            vec![
                UopKind::Compute,
                UopKind::Compute,
                UopKind::Compute,
                UopKind::Pcommit
            ]
        );
        assert!(c.is_done());
    }

    #[test]
    fn markers_and_zero_compute_are_skipped() {
        let events = [
            Event::TxBegin(1),
            Event::Compute(0),
            Event::Store {
                addr: PAddr::new(8),
                size: 8,
                value: 1,
            },
            Event::TxEnd(1),
        ];
        let mut c = TraceCursor::new(&events);
        assert_eq!(
            c.next_uop().unwrap().kind,
            UopKind::Store {
                addr: PAddr::new(8)
            }
        );
        assert!(c.next_uop().is_none());
    }

    #[test]
    fn trace_idx_tracks_source_event() {
        let events = [Event::Compute(2), Event::Sfence];
        let mut c = TraceCursor::new(&events);
        assert_eq!(c.next_uop().unwrap().trace_idx, 0);
        assert_eq!(c.next_uop().unwrap().trace_idx, 0);
        assert_eq!(c.next_uop().unwrap().trace_idx, 1);
    }

    #[test]
    fn rollback_repositioning() {
        let events = [Event::Sfence, Event::Pcommit, Event::Sfence];
        let mut c = TraceCursor::new(&events);
        c.next_uop();
        c.next_uop();
        c.set_position(1);
        assert_eq!(c.next_uop().unwrap().kind, UopKind::Pcommit);
    }

    #[test]
    fn flush_targets_block_ids() {
        let events = [Event::Clwb {
            addr: PAddr::new(130),
        }];
        let mut c = TraceCursor::new(&events);
        assert_eq!(
            c.next_uop().unwrap().kind,
            UopKind::Clwb {
                block: BlockId::new(2)
            }
        );
    }

    #[test]
    fn mem_classification() {
        assert!(UopKind::Load {
            addr: PAddr::new(0),
            dep: false
        }
        .is_mem());
        assert!(UopKind::Store {
            addr: PAddr::new(0)
        }
        .is_mem());
        assert!(!UopKind::Pcommit.is_mem());
        assert!(UopKind::Sfence.is_fence());
    }
}
