//! The frozen reference stepper: a verbatim copy of the pipeline as it
//! stood before the event-driven scheduler refactor.
//!
//! This module exists purely as the correctness oracle for the fast
//! core. [`ReferencePipeline`] is the pre-refactor [`crate::Pipeline`]
//! — naive per-cycle scans of the pending persist sets and the full
//! issue window — kept byte-for-byte so the cycle-equivalence gate
//! (`cargo test -p spp-bench --test cycle_equivalence`, plus the
//! proptest in this file) compares the optimized scheduler against the
//! exact semantics it replaced rather than against itself.
//!
//! It is compiled only for tests and behind the `reference-stepper`
//! feature, so release binaries carry no dead slow path. Do not "fix"
//! or optimize this file: any intentional timing change to the live
//! pipeline must land in both, in the same commit, with the equivalence
//! suite re-run.

use std::collections::VecDeque;

use spp_core::{BloomFilter, Blt, EpochManager, Ssb, SsbEntry, SsbOp};
use spp_mem::{AccessKind, Cycle, Fault, FaultSite, FaultState, MemorySystem, PIPE_STREAM};
use spp_obs::{ProbeEvent, ProbeHandle, StallCause};
use spp_pmem::{BlockId, Event, PAddr};

use crate::config::{CpuConfig, SpConfig};
use crate::error::{DiagnosticSnapshot, SimError, SimErrorKind};
use crate::stats::{CpuStats, EpochRetired, SimResult};
use crate::uop::{TraceCursor, Uop, UopKind};
use crate::vislog::{VisEvent, VisOp};

/// Internal step failure: lightweight so it can be raised inside
/// borrow-heavy regions; [`ReferencePipeline::step`] attaches the diagnostic
/// snapshot when converting it into a [`SimError`].
#[derive(Debug, Clone, Copy)]
enum StepErr {
    /// An internal invariant broke.
    Broken(&'static str),
    /// No progress and no scheduled future event.
    Wedged,
    /// The forward-progress watchdog fired at this bound.
    Watchdog(Cycle),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EState {
    /// Not yet issued.
    Waiting,
    /// Executing; completes at the cycle.
    Exec(Cycle),
    /// Complete (or retire-time semantics).
    Ready,
}

#[derive(Debug, Clone, Copy)]
struct RobEntry {
    uop: Uop,
    seq: u64,
    state: EState,
    /// For dependent loads: the seq of the previous load in program
    /// order (pointer chasing).
    prev_load: Option<u64>,
}

impl RobEntry {
    fn complete(&self, now: Cycle) -> bool {
        match self.state {
            EState::Ready => true,
            EState::Exec(t) => t <= now,
            EState::Waiting => false,
        }
    }
}

/// Commit gate of one speculative epoch (§4.2.1).
#[derive(Debug, Clone, Copy)]
struct Gate {
    /// Epoch this gate guards.
    epoch: u64,
    /// Absolute cycle the epoch's entry obligation completes; `None`
    /// until the predecessor's drained `sfence-pcommit-sfence` issues
    /// its pcommit.
    ready_at: Option<Cycle>,
    /// Additionally require all older SSB entries drained and their
    /// writebacks visible.
    needs_prior_drain: bool,
}

#[derive(Debug)]
struct SpState {
    cfg: SpConfig,
    ssb: Ssb,
    bloom: BloomFilter,
    bloom_dirty: bool,
    blt: Blt,
    epochs: EpochManager,
    gates: VecDeque<Gate>,
    /// Highest committed epoch id; entries tagged at or below it drain.
    committed_frontier: Option<u64>,
    drain_busy: Cycle,
    /// Max global-visibility time of flushes drained from the SSB.
    drain_visible_frontier: Cycle,
    /// Is the core retiring speculatively?
    speculating: bool,
    /// Per-live-epoch retired micro-op breakdowns (squash accounting).
    retired_per_epoch: VecDeque<(u64, EpochRetired)>,
}

impl SpState {
    fn new(cfg: SpConfig) -> Self {
        SpState {
            ssb: Ssb::new(cfg.ssb),
            bloom: BloomFilter::with_bytes(cfg.bloom_bytes),
            bloom_dirty: false,
            blt: Blt::new(),
            epochs: EpochManager::new(cfg.checkpoints),
            gates: VecDeque::new(),
            committed_frontier: None,
            drain_busy: 0,
            drain_visible_frontier: 0,
            speculating: false,
            retired_per_epoch: VecDeque::new(),
            cfg,
        }
    }

    fn frontier_committed(&self, epoch: u64) -> bool {
        self.committed_frontier.is_some_and(|f| epoch <= f)
    }
}

/// The pipeline simulator. Construct with [`ReferencePipeline::new`], drive with
/// [`run`](ReferencePipeline::run) (or [`step`](ReferencePipeline::step) /
/// [`inject_coherence`](ReferencePipeline::inject_coherence) for fine-grained
/// tests), then read [`result`](ReferencePipeline::result).
#[derive(Debug)]
pub struct ReferencePipeline<'t> {
    cfg: CpuConfig,
    cursor: TraceCursor<'t>,
    mem: MemorySystem,
    now: Cycle,
    fetchq: VecDeque<Uop>,
    rob: VecDeque<RobEntry>,
    seq_base: u64,
    next_seq: u64,
    lsq_used: usize,
    last_load_seq: Option<u64>,
    /// Post-retirement store buffer: block to write plus the source
    /// trace index of the store (persist-visibility attribution).
    store_buffer: VecDeque<(BlockId, usize)>,
    sb_busy: Cycle,
    pending_flushes: Vec<Cycle>,
    pending_pcommits: Vec<Cycle>,
    sp: Option<SpState>,
    /// Pipeline-side fault-injection streams (ack return/duplication,
    /// SSB and checkpoint pressure); `None` without a fault plan.
    faults: Option<FaultState>,
    /// Cycle of the most recent retirement (watchdog reference point).
    last_retire: Cycle,
    stats: CpuStats,
    /// Observability probe (disabled by default — one dead branch per
    /// emission site). Never influences timing or architectural state.
    probe: ProbeHandle,
    /// Cycle the current fence-stall episode opened at, if one is open
    /// (probe bookkeeping only).
    fence_stall_open: Option<Cycle>,
    /// Persist-visibility log (litmus harness). `None` unless enabled —
    /// the default path pays one dead branch per persist effect. Pure
    /// recording: never influences timing or architectural state.
    vislog: Option<Vec<VisEvent>>,
}

impl<'t> ReferencePipeline<'t> {
    /// Builds a pipeline over a recorded event trace with its own
    /// private memory system.
    pub fn new(events: &'t [Event], cfg: CpuConfig) -> Self {
        Self::with_memory(events, cfg, MemorySystem::new(cfg.mem))
    }

    /// Builds a pipeline over an explicitly constructed memory system
    /// (e.g. one sharing its memory controller with other cores — see
    /// [`crate::MultiCore`]).
    pub fn with_memory(events: &'t [Event], cfg: CpuConfig, mem: MemorySystem) -> Self {
        ReferencePipeline {
            cursor: TraceCursor::new(events),
            mem,
            now: 0,
            fetchq: VecDeque::with_capacity(cfg.fetch_queue),
            rob: VecDeque::with_capacity(cfg.rob_entries),
            seq_base: 0,
            next_seq: 0,
            lsq_used: 0,
            last_load_seq: None,
            store_buffer: VecDeque::with_capacity(cfg.store_buffer),
            sb_busy: 0,
            pending_flushes: Vec::new(),
            pending_pcommits: Vec::new(),
            sp: cfg.sp.map(SpState::new),
            faults: cfg.mem.fault.map(|spec| FaultState::new(spec, PIPE_STREAM)),
            last_retire: 0,
            stats: CpuStats::default(),
            probe: ProbeHandle::disabled(),
            fence_stall_open: None,
            vislog: None,
            cfg,
        }
    }

    /// Starts recording the persist-visibility log: one [`VisEvent`]
    /// per store drain, flush posting, `pcommit` issue, and realized
    /// fence. Off by default. See [`crate::vislog`].
    pub fn enable_persist_log(&mut self) {
        self.vislog = Some(Vec::new());
    }

    /// Takes the recorded persist-visibility log (empty if logging was
    /// never enabled). Entries are in recording order; feed them to
    /// [`crate::vislog::reconstruct`], which orders by visibility time.
    pub fn take_persist_log(&mut self) -> Vec<VisEvent> {
        self.vislog.take().unwrap_or_default()
    }

    /// Attaches an observability probe to the pipeline and its memory
    /// system. Probes observe epoch lifecycle, pcommit latency, fence
    /// stalls, and buffer occupancy; they never change simulated timing
    /// or architectural state (pinned by the probe-neutrality tests).
    pub fn set_probe(&mut self, probe: ProbeHandle) {
        self.mem.set_probe(probe.clone());
        self.probe = probe;
    }

    /// Current simulated cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Has every micro-op retired and every buffer drained?
    pub fn is_done(&self) -> bool {
        self.cursor.is_done()
            && self.fetchq.is_empty()
            && self.rob.is_empty()
            && self.store_buffer.is_empty()
            && self
                .sp
                .as_ref()
                .is_none_or(|sp| sp.ssb.is_empty() && sp.epochs.is_empty() && !sp.speculating)
    }

    /// Runs to completion and returns the results.
    ///
    /// # Panics
    ///
    /// Panics if the simulation fails (watchdog, deadlock, or broken
    /// invariant); use [`ReferencePipeline::try_run`] to handle the error.
    pub fn run(self) -> SimResult {
        match self.try_run() {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }

    /// Runs to completion, surfacing simulation failures as typed
    /// errors.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] (with a [`DiagnosticSnapshot`]) if the
    /// forward-progress watchdog fires, the pipeline deadlocks, or an
    /// internal invariant breaks.
    pub fn try_run(mut self) -> Result<SimResult, SimError> {
        while !self.is_done() {
            self.step()?;
        }
        if let Some(opened) = self.fence_stall_open.take() {
            self.probe.emit(ProbeEvent::FenceStallEnd {
                now: self.now,
                stalled: self.now.saturating_sub(opened),
            });
        }
        Ok(self.result())
    }

    /// Advances one cycle (or skips idle time to the next event).
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] on watchdog expiry, deadlock, or a broken
    /// internal invariant.
    pub fn step(&mut self) -> Result<(), SimError> {
        match self.step_inner() {
            Ok(()) => Ok(()),
            Err(e) => {
                let kind = match e {
                    StepErr::Broken(what) => SimErrorKind::BrokenInvariant { what },
                    StepErr::Wedged => SimErrorKind::NoFutureEvent,
                    StepErr::Watchdog(bound) => SimErrorKind::NoRetireProgress { bound },
                };
                Err(SimError {
                    kind,
                    snapshot: Box::new(self.snapshot()),
                })
            }
        }
    }

    fn step_inner(&mut self) -> Result<(), StepErr> {
        if !self.probe.is_enabled() {
            return self.step_body();
        }
        // Instrumented path: attribute this step's retirement-stall
        // cycles by diffing the four stall counters around the body, so
        // probe attribution is identical to `CpuStats` by construction.
        let at = self.now;
        let before = self.stats;
        let out = self.step_body();
        self.emit_stall_probes(at, &before);
        out
    }

    /// Emits `RetireStall` deltas and fence-stall episode transitions for
    /// one step that started at cycle `at` with counters `before`.
    fn emit_stall_probes(&mut self, at: Cycle, before: &CpuStats) {
        let s = self.stats;
        let deltas = [
            (
                s.fetch_stall_cycles - before.fetch_stall_cycles,
                StallCause::Backend,
            ),
            (
                s.fence_stall_cycles - before.fence_stall_cycles,
                StallCause::Fence,
            ),
            (
                s.ssb_full_stall_cycles - before.ssb_full_stall_cycles,
                StallCause::SsbFull,
            ),
            (
                s.checkpoint_stall_cycles - before.checkpoint_stall_cycles,
                StallCause::CheckpointFull,
            ),
        ];
        for (cycles, cause) in deltas {
            if cycles > 0 {
                self.probe.emit(ProbeEvent::RetireStall {
                    now: at,
                    cause,
                    cycles,
                });
            }
        }
        let fence_stalling = s.fence_stall_cycles > before.fence_stall_cycles;
        match (self.fence_stall_open, fence_stalling) {
            (None, true) => {
                self.fence_stall_open = Some(at);
                self.probe.emit(ProbeEvent::FenceStallBegin { now: at });
            }
            (Some(opened), false) => {
                self.fence_stall_open = None;
                self.probe.emit(ProbeEvent::FenceStallEnd {
                    now: at,
                    stalled: at.saturating_sub(opened),
                });
            }
            _ => {}
        }
    }

    fn step_body(&mut self) -> Result<(), StepErr> {
        let mut progressed = false;
        progressed |= self.commit_drain()?;
        let retire_block = self.retire()?;
        progressed |= retire_block.progressed;
        progressed |= self.drain_store_buffer();
        progressed |= self.issue();
        let dispatched = self.dispatch();
        progressed |= dispatched > 0;
        progressed |= self.fetch();

        let fetch_stalled = !self.fetchq.is_empty() && dispatched == 0;
        if fetch_stalled {
            self.stats.fetch_stall_cycles += 1;
        }

        if progressed || self.is_done() {
            self.now += 1;
        } else if self.fault_retry(&retire_block) {
            // A fault is denying SSB or checkpoint resources: the denial
            // is re-drawn per attempt, so retry next cycle rather than
            // sleeping until a scheduled event that may never come.
            self.now += 1;
        } else {
            let Some(target) = self.next_event_time() else {
                return Err(StepErr::Wedged);
            };
            debug_assert!(
                target > self.now,
                "no-progress cycle must have a future event"
            );
            let skipped = target - self.now - 1;
            if fetch_stalled {
                self.stats.fetch_stall_cycles += skipped;
            }
            if retire_block.fence {
                self.stats.fence_stall_cycles += skipped;
            }
            if retire_block.ssb_full {
                self.stats.ssb_full_stall_cycles += skipped;
            }
            if retire_block.checkpoint {
                self.stats.checkpoint_stall_cycles += skipped;
            }
            self.now = target;
        }
        self.stats.cycles = self.now;

        let bound = self.cfg.watchdog_cycles;
        if bound > 0 && self.now.saturating_sub(self.last_retire) > bound && !self.is_done() {
            return Err(StepErr::Watchdog(bound));
        }
        Ok(())
    }

    /// Should a no-progress cycle retry instead of sleeping? True when a
    /// resource-denial fault may be the cause (its draw can clear on any
    /// retry, so there need not be a scheduled wake-up event).
    fn fault_retry(&self, block: &RetireBlock) -> bool {
        (block.ssb_full || block.checkpoint)
            && self
                .faults
                .as_ref()
                .is_some_and(|f| f.spec().denies_resources())
    }

    /// Captures the diagnostic state attached to [`SimError`]s (public
    /// so harnesses can also inspect a healthy pipeline mid-run).
    pub fn snapshot(&mut self) -> DiagnosticSnapshot {
        let mut snap = DiagnosticSnapshot {
            cycle: self.now,
            rob_head: self.rob.front().map(|e| e.uop),
            rob_len: self.rob.len(),
            fetchq_len: self.fetchq.len(),
            store_buffer_len: self.store_buffer.len(),
            lsq_used: self.lsq_used,
            pending_flushes: self.pending_flushes.len(),
            pending_pcommits: self.pending_pcommits.len(),
            trace_done: self.cursor.is_done(),
            wpq_depth: self.mem.wpq_occupancy(self.now),
            ..DiagnosticSnapshot::default()
        };
        if let Some(sp) = &self.sp {
            snap.speculating = sp.speculating;
            snap.ssb_len = sp.ssb.len();
            for e in sp.ssb.iter() {
                match snap.ssb_per_epoch.last_mut() {
                    Some(last) if last.0 == e.epoch => last.1 += 1,
                    _ => snap.ssb_per_epoch.push((e.epoch, 1)),
                }
            }
            snap.checkpoints_live = sp.epochs.checkpoints_live();
            snap.checkpoint_capacity = sp.epochs.checkpoint_capacity();
        }
        snap
    }

    /// Assembles the final statistics.
    pub fn result(&self) -> SimResult {
        let mut r = SimResult {
            cpu: self.stats,
            mem: self.mem.stats(),
            mc: self.mem.mc_stats(),
            ..SimResult::default()
        };
        r.cpu.cycles = self.now;
        r.faults = self.mem.fault_stats().merged(
            self.faults
                .as_ref()
                .map(FaultState::stats)
                .unwrap_or_default(),
        );
        if let Some(sp) = &self.sp {
            r.ssb = sp.ssb.stats();
            r.bloom = sp.bloom.stats();
            r.checkpoints = sp.epochs.checkpoint_stats();
            r.blt = sp.blt.stats();
            let (epochs, rollbacks) = sp.epochs.counters();
            r.cpu.epochs = epochs;
            r.cpu.rollbacks = rollbacks;
        }
        r
    }

    // ---- external coherence (tests / multicore harnesses) -------------

    /// Delivers an external coherence request for `block`. Returns
    /// `true` if it conflicted with speculative state and triggered a
    /// rollback to the oldest checkpoint.
    pub fn inject_coherence(&mut self, block: BlockId) -> bool {
        let Some(sp) = &mut self.sp else { return false };
        // Count the snoop even outside speculation (the table is empty
        // then, so it is always a miss): a core's snoop count is a pure
        // function of its peers' store streams, independent of how
        // same-cycle scheduling ties were broken.
        let hit = sp.blt.snoop(block);
        if !sp.epochs.speculating() || !hit {
            return false;
        }
        // Rollback: squash everything younger than the oldest checkpoint.
        // (`speculating()` was checked above, so both are `Some`.)
        let Some(oldest) = sp.epochs.oldest() else {
            return false;
        };
        let oldest_epoch = oldest.id;
        let Some(resume) = sp.epochs.rollback() else {
            return false;
        };
        sp.ssb.flush_from(oldest_epoch);
        sp.gates.clear();
        sp.blt.clear();
        sp.speculating = false;
        let mut squashed = EpochRetired::default();
        for &(_, r) in &sp.retired_per_epoch {
            squashed.merge(r);
        }
        sp.retired_per_epoch.clear();
        self.stats.squashed_uops += squashed.uops;
        squashed.retract(&mut self.stats);
        self.stats.rollbacks += 1;
        self.probe.emit(ProbeEvent::EpochRollback {
            now: self.now,
            squashed_uops: squashed.uops,
        });
        self.probe.emit(ProbeEvent::CheckpointOccupancy {
            now: self.now,
            live: sp.epochs.checkpoints_live(),
            capacity: sp.epochs.checkpoint_capacity(),
        });
        self.probe.emit(ProbeEvent::SsbOccupancy {
            now: self.now,
            occupancy: sp.ssb.len(),
            capacity: sp.cfg.ssb.entries,
        });
        self.fetchq.clear();
        self.rob.clear();
        self.seq_base = self.next_seq;
        self.lsq_used = 0;
        self.last_load_seq = None;
        self.cursor.set_position(resume);
        true
    }

    // ---- fetch / dispatch ---------------------------------------------

    fn fetch(&mut self) -> bool {
        let mut any = false;
        for _ in 0..self.cfg.width {
            if self.fetchq.len() >= self.cfg.fetch_queue {
                break;
            }
            match self.cursor.next_uop() {
                Some(u) => {
                    self.fetchq.push_back(u);
                    any = true;
                }
                None => break,
            }
        }
        any
    }

    fn dispatch(&mut self) -> usize {
        let mut n = 0;
        while n < self.cfg.width {
            let Some(&uop) = self.fetchq.front() else {
                break;
            };
            if self.rob.len() >= self.cfg.rob_entries {
                break;
            }
            if uop.kind.is_mem() && self.lsq_used >= self.cfg.lsq_entries {
                break;
            }
            self.fetchq.pop_front();
            let seq = self.next_seq;
            self.next_seq += 1;
            // Dependent loads chain behind the previous *dependent* load
            // (the pointer chain); independent field reads in between do
            // not break the chain.
            let is_dep = matches!(uop.kind, UopKind::Load { dep: true, .. });
            let prev_load = if is_dep { self.last_load_seq } else { None };
            if is_dep {
                self.last_load_seq = Some(seq);
            }
            if uop.kind.is_mem() {
                self.lsq_used += 1;
            }
            let state = match uop.kind {
                UopKind::Compute | UopKind::Load { .. } | UopKind::Store { .. } => EState::Waiting,
                _ => EState::Ready,
            };
            self.rob.push_back(RobEntry {
                uop,
                seq,
                state,
                prev_load,
            });
            n += 1;
        }
        n
    }

    // ---- issue ----------------------------------------------------------

    fn issue(&mut self) -> bool {
        let mut issued = 0;
        let window = self.cfg.issue_queue.min(self.rob.len());
        for i in 0..window {
            if issued >= self.cfg.width {
                break;
            }
            if self.rob[i].state != EState::Waiting {
                continue;
            }
            match self.rob[i].uop.kind {
                UopKind::Compute | UopKind::Store { .. } => {
                    self.rob[i].state = EState::Exec(self.now + 1);
                    issued += 1;
                }
                UopKind::Load { addr, dep } => {
                    if dep {
                        if let Some(prev) = self.rob[i].prev_load {
                            if prev >= self.seq_base {
                                let idx = (prev - self.seq_base) as usize;
                                if !self.rob[idx].complete(self.now) {
                                    continue;
                                }
                            }
                        }
                    }
                    // Store-to-load forwarding from older, unretired
                    // stores in the window.
                    let forwarded = self
                        .rob
                        .iter()
                        .take(i)
                        .any(|e| matches!(e.uop.kind, UopKind::Store { addr: a } if a == addr));
                    let done = if forwarded {
                        self.stats.lsq_forwards += 1;
                        self.now + 1
                    } else {
                        self.load_completion(addr)
                    };
                    self.rob[i].state = EState::Exec(done);
                    issued += 1;
                }
                _ => {}
            }
        }
        issued > 0
    }

    /// Computes a load's completion: bloom + SSB forwarding path when
    /// speculative state may be buffered, cache hierarchy otherwise.
    fn load_completion(&mut self, addr: PAddr) -> Cycle {
        let now = self.now;
        if let Some(sp) = &mut self.sp {
            if sp.speculating {
                sp.blt.record(addr.block());
            }
            if !sp.ssb.is_empty() && sp.bloom.query(addr) {
                let after_cam = now + sp.cfg.ssb.latency;
                if sp.ssb.forwards(addr) {
                    self.stats.ssb_forwards += 1;
                    return after_cam;
                }
                sp.bloom.record_false_positive();
                let (done, _) = self.mem.access(after_cam, addr.block(), AccessKind::Load);
                return done;
            }
        }
        let (done, _) = self.mem.access(now, addr.block(), AccessKind::Load);
        done
    }

    // ---- retire ----------------------------------------------------------

    fn note_spec_retired(&mut self, kind: UopKind) {
        if let Some(sp) = &mut self.sp {
            if sp.speculating {
                if let Some(back) = sp.retired_per_epoch.back_mut() {
                    back.1.note(kind);
                }
            }
        }
    }

    fn pop_retired(&mut self, class: impl Fn(&mut CpuStats)) -> Result<(), StepErr> {
        let Some(e) = self.rob.pop_front() else {
            return Err(StepErr::Broken("retired from an empty ROB"));
        };
        self.seq_base = e.seq + 1;
        if e.uop.kind.is_mem() {
            self.lsq_used -= 1;
        }
        self.stats.committed_uops += 1;
        class(&mut self.stats);
        self.note_spec_retired(e.uop.kind);
        Ok(())
    }

    /// Draws the SSB-pressure site; `true` when a fault denies this
    /// allocation attempt (the held slots cover all currently free
    /// ones).
    fn ssb_alloc_denied(&mut self) -> bool {
        let free = self.sp.as_ref().map_or(0, |s| s.ssb.free());
        if let Some(f) = self.faults.as_mut() {
            if let Some(Fault::SsbPressure { held }) = f.draw(FaultSite::SsbAlloc) {
                return free <= held;
            }
        }
        false
    }

    /// Draws the checkpoint-pressure site; `true` when a fault denies
    /// this allocation attempt.
    fn checkpoint_alloc_denied(&mut self) -> bool {
        self.faults.as_mut().is_some_and(|f| {
            matches!(
                f.draw(FaultSite::CheckpointAlloc),
                Some(Fault::CheckpointPressure)
            )
        })
    }

    /// Draws the ack-return and ack-duplication sites for a `pcommit`
    /// acknowledged at `done`: returns the (possibly delayed) arrival
    /// and queues a duplicate delivery if one fires.
    fn fault_ack(&mut self, mut done: Cycle) -> Cycle {
        if let Some(f) = self.faults.as_mut() {
            if let Some(Fault::PcommitAckDelay { extra }) = f.draw(FaultSite::AckReturn) {
                done += extra;
            }
            if let Some(Fault::PcommitAckDuplicate { redelivery }) = f.draw(FaultSite::AckDuplicate)
            {
                // The duplicate ack arrives later and must be tolerated:
                // it is one more pending acknowledgement for fences to
                // wait out, never a second drain.
                self.pending_pcommits.push(done + redelivery);
            }
        }
        done
    }

    fn pcommit_outstanding(&self) -> bool {
        self.pending_pcommits.iter().any(|&t| t > self.now)
    }

    fn retire(&mut self) -> Result<RetireBlock, StepErr> {
        let mut block = RetireBlock::default();
        let mut retired = 0;
        while retired < self.cfg.width {
            let Some(head) = self.rob.front().copied() else {
                break;
            };
            if !head.complete(self.now) {
                break;
            }
            let speculating = self.sp.as_ref().is_some_and(|s| s.speculating);
            match head.uop.kind {
                UopKind::Compute => {
                    self.pop_retired(|_| {})?;
                }
                UopKind::Load { .. } => {
                    self.pop_retired(|s| s.loads += 1)?;
                }
                UopKind::Store { addr } => {
                    if !self.retire_store(addr, head.uop.trace_idx, &mut block)? {
                        break;
                    }
                }
                UopKind::Clwb { block: b } | UopKind::ClflushOpt { block: b } => {
                    let invalidate = matches!(head.uop.kind, UopKind::ClflushOpt { .. });
                    // clwb is ordered behind older stores to the same
                    // line: wait for the store buffer to drain.
                    if !self.store_buffer.is_empty() {
                        break;
                    }
                    if speculating || self.ssb_nonempty() {
                        let op = if invalidate {
                            SsbOp::ClflushOpt { block: b }
                        } else {
                            SsbOp::Clwb { block: b }
                        };
                        if !self.push_ssb(op, head.uop.trace_idx)? {
                            block.ssb_full = true;
                            self.stats.ssb_full_stall_cycles += 1;
                            break;
                        }
                    } else {
                        let f = self.mem.flush(self.now, b, invalidate);
                        self.pending_flushes.push(f.visible_at);
                        if let Some(l) = self.vislog.as_mut() {
                            l.push(VisEvent {
                                at: self.now,
                                op: VisOp::Flush {
                                    trace_idx: head.uop.trace_idx,
                                },
                            });
                        }
                    }
                    if self.pcommit_outstanding() {
                        self.stats.stores_while_pcommit += 1;
                    }
                    self.pop_retired(|s| s.flushes += 1)?;
                }
                UopKind::Clflush { block: b } => {
                    if !self.retire_clflush(b, head.uop.trace_idx, speculating, &mut block)? {
                        break;
                    }
                }
                UopKind::Pcommit => {
                    if speculating {
                        if !self.retire_spec_pcommit_pattern(head.uop.trace_idx, &mut block)? {
                            break;
                        }
                    } else if self.ssb_nonempty() {
                        if !self.push_ssb(SsbOp::Pcommit, head.uop.trace_idx)? {
                            block.ssb_full = true;
                            self.stats.ssb_full_stall_cycles += 1;
                            break;
                        }
                        self.pop_retired(|s| s.pcommits += 1)?;
                    } else {
                        if let Some(l) = self.vislog.as_mut() {
                            l.push(VisEvent {
                                at: self.now,
                                op: VisOp::Pcommit,
                            });
                        }
                        let done = self.mem.pcommit(self.now);
                        let done = self.fault_ack(done);
                        let inflight = 1 + self
                            .pending_pcommits
                            .iter()
                            .filter(|&&t| t > self.now)
                            .count() as u64;
                        self.stats.max_inflight_pcommits =
                            self.stats.max_inflight_pcommits.max(inflight);
                        self.pending_pcommits.push(done);
                        self.pop_retired(|s| s.pcommits += 1)?;
                    }
                }
                UopKind::Sfence | UopKind::Mfence => {
                    if !self.retire_fence(speculating, &mut block)? {
                        break;
                    }
                }
            }
            retired += 1;
        }
        if retired > 0 {
            self.last_retire = self.now;
        }
        block.progressed = retired > 0;
        Ok(block)
    }

    fn ssb_nonempty(&self) -> bool {
        self.sp.as_ref().is_some_and(|s| !s.ssb.is_empty())
    }

    /// Pushes an op into the SSB tagged with the current tail epoch and
    /// its source trace index.
    /// `Ok(false)` means the SSB is full (or a fault denied the slot).
    fn push_ssb(&mut self, op: SsbOp, trace_idx: usize) -> Result<bool, StepErr> {
        if self.ssb_alloc_denied() {
            return Ok(false);
        }
        let Some(sp) = self.sp.as_mut() else {
            return Err(StepErr::Broken("SSB push without SP"));
        };
        let epoch = if sp.speculating {
            let Some(youngest) = sp.epochs.youngest() else {
                return Err(StepErr::Broken("speculating with no live epoch"));
            };
            youngest.id
        } else {
            // Post-exit tail: ordered behind the already-committed drain.
            sp.committed_frontier.unwrap_or(0)
        };
        let pushed = if let SsbOp::Store { addr } = op {
            if sp
                .ssb
                .push(SsbEntry {
                    op,
                    epoch,
                    trace_idx,
                })
                .is_err()
            {
                return Ok(false);
            }
            sp.bloom.insert(addr);
            sp.bloom_dirty = true;
            if sp.speculating {
                sp.blt.record(addr.block());
            }
            true
        } else {
            sp.ssb
                .push(SsbEntry {
                    op,
                    epoch,
                    trace_idx,
                })
                .is_ok()
        };
        if pushed {
            self.probe.emit(ProbeEvent::SsbOccupancy {
                now: self.now,
                occupancy: sp.ssb.len(),
                capacity: sp.cfg.ssb.entries,
            });
        }
        Ok(pushed)
    }

    fn retire_store(
        &mut self,
        addr: PAddr,
        trace_idx: usize,
        block: &mut RetireBlock,
    ) -> Result<bool, StepErr> {
        let speculating = self.sp.as_ref().is_some_and(|s| s.speculating);
        if speculating || self.ssb_nonempty() {
            if !self.push_ssb(SsbOp::Store { addr }, trace_idx)? {
                block.ssb_full = true;
                self.stats.ssb_full_stall_cycles += 1;
                return Ok(false);
            }
        } else {
            if self.store_buffer.len() >= self.cfg.store_buffer {
                return Ok(false);
            }
            self.store_buffer.push_back((addr.block(), trace_idx));
        }
        if self.pcommit_outstanding() {
            self.stats.stores_while_pcommit += 1;
        }
        self.pop_retired(|s| s.stores += 1)?;
        Ok(true)
    }

    fn retire_clflush(
        &mut self,
        b: BlockId,
        trace_idx: usize,
        speculating: bool,
        block: &mut RetireBlock,
    ) -> Result<bool, StepErr> {
        if !self.store_buffer.is_empty() {
            return Ok(false);
        }
        if speculating || self.ssb_nonempty() {
            if !self.push_ssb(SsbOp::ClflushOpt { block: b }, trace_idx)? {
                block.ssb_full = true;
                return Ok(false);
            }
            self.pop_retired(|s| s.flushes += 1)?;
            return Ok(true);
        }
        // Legacy clflush serializes: issue once, then hold retirement
        // until visible.
        let Some(head) = self.rob.front() else {
            return Err(StepErr::Broken("clflush retire with an empty ROB"));
        };
        match head.state {
            EState::Ready => {
                let f = self.mem.flush(self.now, b, true);
                if let Some(h) = self.rob.front_mut() {
                    h.state = EState::Exec(f.visible_at);
                }
                if let Some(l) = self.vislog.as_mut() {
                    l.push(VisEvent {
                        at: self.now,
                        op: VisOp::Flush { trace_idx },
                    });
                }
                Ok(false)
            }
            EState::Exec(t) if t <= self.now => {
                self.pop_retired(|s| s.flushes += 1)?;
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Speculative-mode `pcommit` at the head: if followed by an
    /// `sfence` (and combining is on), consume both as the combined SSB
    /// opcode and open a child epoch at the trailing fence.
    fn retire_spec_pcommit_pattern(
        &mut self,
        trace_idx: usize,
        block: &mut RetireBlock,
    ) -> Result<bool, StepErr> {
        let Some(combine) = self.sp.as_ref().map(|s| s.cfg.combine_barrier) else {
            return Err(StepErr::Broken("speculative pcommit without SP"));
        };
        let next_is_sfence = self.rob.len() >= 2 && matches!(self.rob[1].uop.kind, UopKind::Sfence);
        if combine && next_is_sfence {
            return self.consume_combined_barrier(0, block);
        }
        if combine && self.rob.len() < 2 && !(self.cursor.is_done() && self.fetchq.is_empty()) {
            // The sfence is probably right behind; wait for dispatch.
            return Ok(false);
        }
        // Bare in-shadow pcommit: delay it into the SSB.
        if !self.push_ssb(SsbOp::Pcommit, trace_idx)? {
            block.ssb_full = true;
            self.stats.ssb_full_stall_cycles += 1;
            return Ok(false);
        }
        self.pop_retired(|s| s.pcommits += 1)?;
        Ok(true)
    }

    /// Consumes `pcommit`(at head offset 0 or 1) + trailing `sfence`:
    /// pushes the combined opcode, opens a child epoch checkpointed at
    /// the trailing fence. `pcommit_at` is the ROB index of the pcommit.
    /// Consumes nothing unless every resource check passes.
    fn consume_combined_barrier(
        &mut self,
        pcommit_at: usize,
        block: &mut RetireBlock,
    ) -> Result<bool, StepErr> {
        let fence_idx = pcommit_at + 1;
        debug_assert!(matches!(self.rob[pcommit_at].uop.kind, UopKind::Pcommit));
        debug_assert!(matches!(self.rob[fence_idx].uop.kind, UopKind::Sfence));
        let resume_idx = self.rob[fence_idx].uop.trace_idx;
        let pcommit_tidx = self.rob[pcommit_at].uop.trace_idx;
        let ssb_denied = self.ssb_alloc_denied();
        let ckpt_denied = self.checkpoint_alloc_denied();
        {
            let Some(sp) = self.sp.as_mut() else {
                return Err(StepErr::Broken("combined barrier without SP"));
            };
            if sp.ssb.free() < 1 || ssb_denied {
                block.ssb_full = true;
                self.stats.ssb_full_stall_cycles += 1;
                return Ok(false);
            }
            if !sp.epochs.can_begin() || ckpt_denied {
                block.checkpoint = true;
                self.stats.checkpoint_stall_cycles += 1;
                return Ok(false);
            }
            let Some(parent) = sp.epochs.youngest() else {
                return Err(StepErr::Broken("combined barrier while not speculating"));
            };
            let parent = parent.id;
            if sp
                .ssb
                .push(SsbEntry {
                    op: SsbOp::SfencePcommitSfence,
                    epoch: parent,
                    trace_idx: pcommit_tidx,
                })
                .is_err()
            {
                return Err(StepErr::Broken("SSB push failed after free-space check"));
            }
            self.probe.emit(ProbeEvent::SsbOccupancy {
                now: self.now,
                occupancy: sp.ssb.len(),
                capacity: sp.cfg.ssb.entries,
            });
            let Ok(child) = sp.epochs.begin(resume_idx, self.now) else {
                return Err(StepErr::Broken("checkpoint begin failed after can_begin"));
            };
            sp.gates.push_back(Gate {
                epoch: child,
                ready_at: None,
                needs_prior_drain: false,
            });
            sp.retired_per_epoch
                .push_back((child, EpochRetired::default()));
            self.probe.emit(ProbeEvent::EpochBegin {
                now: self.now,
                epoch: child,
            });
            self.probe.emit(ProbeEvent::CheckpointOccupancy {
                now: self.now,
                live: sp.epochs.checkpoints_live(),
                capacity: sp.epochs.checkpoint_capacity(),
            });
        }
        self.stats.epochs += 1;
        // Retire the consumed micro-ops (leading sfence if present,
        // pcommit, trailing sfence).
        for _ in 0..=fence_idx {
            let Some(e) = self.rob.pop_front() else {
                return Err(StepErr::Broken("combined pattern missing its ROB entries"));
            };
            self.seq_base = e.seq + 1;
            self.stats.committed_uops += 1;
            match e.uop.kind {
                UopKind::Pcommit => self.stats.pcommits += 1,
                UopKind::Sfence => self.stats.fences += 1,
                _ => return Err(StepErr::Broken("combined pattern held a non-barrier uop")),
            }
        }
        // Squash attribution: the child's checkpoint resumes at the
        // trailing sfence, so only that micro-op belongs to the child;
        // the leading sfence/pcommit precede the checkpoint and belong
        // to the parent epoch.
        if let Some(sp) = &mut self.sp {
            let n = sp.retired_per_epoch.len();
            debug_assert!(n >= 2, "combined barrier needs a parent epoch");
            if n >= 2 {
                let parent = &mut sp.retired_per_epoch[n - 2].1;
                parent.uops += fence_idx as u64;
                parent.pcommits += 1;
                parent.fences += fence_idx as u64 - 1;
            }
            if let Some(back) = sp.retired_per_epoch.back_mut() {
                back.1.uops += 1;
                back.1.fences += 1;
            }
        }
        Ok(true)
    }

    fn retire_fence(
        &mut self,
        speculating: bool,
        block: &mut RetireBlock,
    ) -> Result<bool, StepErr> {
        if speculating {
            // In-shadow fence: combined pattern or a bare child epoch.
            let Some(combine) = self.sp.as_ref().map(|s| s.cfg.combine_barrier) else {
                return Err(StepErr::Broken("speculative fence without SP"));
            };
            let pat = combine
                && self.rob.len() >= 3
                && matches!(self.rob[0].uop.kind, UopKind::Sfence)
                && matches!(self.rob[1].uop.kind, UopKind::Pcommit)
                && matches!(self.rob[2].uop.kind, UopKind::Sfence);
            if pat {
                // Leading sfence + pcommit + trailing sfence: the
                // combined path checks resources before consuming, so it
                // can take all three directly.
                return self.consume_combined_barrier(1, block);
            }
            if combine && self.rob.len() < 3 && !(self.cursor.is_done() && self.fetchq.is_empty()) {
                return Ok(false); // wait for the rest of the pattern
            }
            // Bare fence: new child epoch (no pending pcommit of its own).
            let Some(head) = self.rob.front() else {
                return Err(StepErr::Broken("fence retire with an empty ROB"));
            };
            let resume_idx = head.uop.trace_idx;
            let ckpt_denied = self.checkpoint_alloc_denied();
            {
                let Some(sp) = self.sp.as_mut() else {
                    return Err(StepErr::Broken("speculative fence without SP"));
                };
                if !sp.epochs.can_begin() || ckpt_denied {
                    block.checkpoint = true;
                    self.stats.checkpoint_stall_cycles += 1;
                    return Ok(false);
                }
                let Ok(child) = sp.epochs.begin(resume_idx, self.now) else {
                    return Err(StepErr::Broken("checkpoint begin failed after can_begin"));
                };
                sp.gates.push_back(Gate {
                    epoch: child,
                    ready_at: Some(self.now),
                    needs_prior_drain: true,
                });
                sp.retired_per_epoch
                    .push_back((child, EpochRetired::default()));
                self.probe.emit(ProbeEvent::EpochBegin {
                    now: self.now,
                    epoch: child,
                });
                self.probe.emit(ProbeEvent::CheckpointOccupancy {
                    now: self.now,
                    live: sp.epochs.checkpoints_live(),
                    capacity: sp.epochs.checkpoint_capacity(),
                });
            }
            self.stats.epochs += 1;
            self.pop_retired(|s| s.fences += 1)?;
            return Ok(true);
        }

        // Non-speculative fence: wait for the store buffer and all
        // posted persist operations.
        if !self.store_buffer.is_empty() {
            block.fence = true;
            self.stats.fence_stall_cycles += 1;
            return Ok(false);
        }
        let now = self.now;
        self.pending_flushes.retain(|&t| t > now);
        self.pending_pcommits.retain(|&t| t > now);
        let flushes_pending = !self.pending_flushes.is_empty();
        let pcommits_pending = !self.pending_pcommits.is_empty();
        let drain_pending = self.ssb_nonempty()
            || self
                .sp
                .as_ref()
                .is_some_and(|s| s.drain_visible_frontier > now);
        if !flushes_pending && !pcommits_pending && !drain_pending {
            if let Some(l) = self.vislog.as_mut() {
                l.push(VisEvent {
                    at: now,
                    op: VisOp::Fence,
                });
            }
            self.pop_retired(|s| s.fences += 1)?;
            return Ok(true);
        }
        // Blocked. Trigger speculation if enabled and the wait involves
        // pcommit acknowledgements or a pending SSB drain (§4.2.1); a
        // pure clwb-visibility wait is short and simply stalls.
        if self.sp.is_some() && (pcommits_pending || drain_pending) {
            let Some(head) = self.rob.front() else {
                return Err(StepErr::Broken("fence retire with an empty ROB"));
            };
            let resume_idx = head.uop.trace_idx;
            let gate_time = self
                .pending_flushes
                .iter()
                .chain(self.pending_pcommits.iter())
                .copied()
                .max()
                .unwrap_or(now);
            let ckpt_denied = self.checkpoint_alloc_denied();
            let Some(sp) = self.sp.as_mut() else {
                return Err(StepErr::Broken("speculation entry without SP"));
            };
            if !sp.epochs.can_begin() || ckpt_denied {
                block.checkpoint = true;
                self.stats.checkpoint_stall_cycles += 1;
                return Ok(false);
            }
            let Ok(e0) = sp.epochs.begin(resume_idx, now) else {
                return Err(StepErr::Broken("checkpoint begin failed after can_begin"));
            };
            sp.gates.push_back(Gate {
                epoch: e0,
                ready_at: Some(gate_time),
                needs_prior_drain: drain_pending,
            });
            sp.retired_per_epoch
                .push_back((e0, EpochRetired::default()));
            sp.speculating = true;
            self.probe.emit(ProbeEvent::EpochBegin { now, epoch: e0 });
            self.probe.emit(ProbeEvent::CheckpointOccupancy {
                now,
                live: sp.epochs.checkpoints_live(),
                capacity: sp.epochs.checkpoint_capacity(),
            });
            self.stats.epochs += 1;
            self.pending_flushes.clear();
            self.pending_pcommits.clear();
            self.pop_retired(|s| s.fences += 1)?;
            return Ok(true);
        }
        block.fence = true;
        self.stats.fence_stall_cycles += 1;
        Ok(false)
    }

    // ---- store buffer ----------------------------------------------------

    fn drain_store_buffer(&mut self) -> bool {
        let mut any = false;
        while self.sb_busy <= self.now {
            let Some((b, trace_idx)) = self.store_buffer.pop_front() else {
                break;
            };
            // Posted write: state effects now, 1/cycle pacing.
            let _ = self.mem.access(self.now, b, AccessKind::Store);
            if let Some(l) = self.vislog.as_mut() {
                l.push(VisEvent {
                    at: self.now,
                    op: VisOp::Store { trace_idx },
                });
            }
            self.sb_busy = self.now + 1;
            any = true;
        }
        any
    }

    // ---- SP commit & drain -------------------------------------------------

    fn commit_drain(&mut self) -> Result<bool, StepErr> {
        let now = self.now;
        let Some(sp) = &mut self.sp else {
            return Ok(false);
        };
        let mut progressed = false;

        // Commit epochs whose gates pass, oldest first.
        while let Some(oldest) = sp.epochs.oldest() {
            let Some(gate) = sp.gates.front() else {
                return Err(StepErr::Broken("live epoch without a commit gate"));
            };
            debug_assert_eq!(gate.epoch, oldest.id);
            let Some(t) = gate.ready_at else { break };
            if t > now {
                break;
            }
            if gate.needs_prior_drain {
                let older_drained = sp.ssb.peek_front().is_none_or(|f| f.epoch >= oldest.id);
                if !older_drained || sp.drain_busy > now || sp.drain_visible_frontier > now {
                    break;
                }
            }
            if sp.epochs.commit_oldest().is_none() {
                return Err(StepErr::Broken("commit of a vanished epoch"));
            }
            sp.gates.pop_front();
            sp.retired_per_epoch.pop_front();
            sp.committed_frontier = Some(oldest.id);
            // Each epoch corresponds to exactly one program fence (the
            // one whose speculative retirement opened it); its ordering
            // guarantee is realized here, at commit.
            if let Some(l) = self.vislog.as_mut() {
                l.push(VisEvent {
                    at: now,
                    op: VisOp::Fence,
                });
            }
            self.probe.emit(ProbeEvent::EpochCommit {
                now,
                epoch: oldest.id,
                began_at: oldest.checkpoint.taken_at,
            });
            self.probe.emit(ProbeEvent::CheckpointOccupancy {
                now,
                live: sp.epochs.checkpoints_live(),
                capacity: sp.epochs.checkpoint_capacity(),
            });
            if sp.epochs.is_empty() {
                // Exiting speculation; the SSB drains in the background.
                sp.speculating = false;
                sp.blt.clear();
            }
            progressed = true;
        }

        // Drain committed entries from the SSB front.
        while sp.drain_busy <= now {
            let Some(front) = sp.ssb.peek_front() else {
                break;
            };
            if !sp.frontier_committed(front.epoch) {
                break;
            }
            let Some(e) = sp.ssb.pop_front() else {
                return Err(StepErr::Broken("SSB entry vanished mid-drain"));
            };
            let t = sp.drain_busy.max(now);
            match e.op {
                SsbOp::Store { addr } => {
                    let _ = self.mem.access(t, addr.block(), AccessKind::Store);
                    if let Some(l) = self.vislog.as_mut() {
                        l.push(VisEvent {
                            at: t,
                            op: VisOp::Store {
                                trace_idx: e.trace_idx,
                            },
                        });
                    }
                    sp.drain_busy = t + 1;
                }
                SsbOp::Clwb { block } => {
                    let f = self.mem.flush(t, block, false);
                    sp.drain_visible_frontier = sp.drain_visible_frontier.max(f.visible_at);
                    if let Some(l) = self.vislog.as_mut() {
                        l.push(VisEvent {
                            at: t,
                            op: VisOp::Flush {
                                trace_idx: e.trace_idx,
                            },
                        });
                    }
                    sp.drain_busy = t + 1;
                }
                SsbOp::ClflushOpt { block } => {
                    let f = self.mem.flush(t, block, true);
                    sp.drain_visible_frontier = sp.drain_visible_frontier.max(f.visible_at);
                    if let Some(l) = self.vislog.as_mut() {
                        l.push(VisEvent {
                            at: t,
                            op: VisOp::Flush {
                                trace_idx: e.trace_idx,
                            },
                        });
                    }
                    sp.drain_busy = t + 1;
                }
                SsbOp::Pcommit => {
                    let _ = self.mem.pcommit(t);
                    if let Some(l) = self.vislog.as_mut() {
                        l.push(VisEvent {
                            at: t,
                            op: VisOp::Pcommit,
                        });
                    }
                    sp.drain_busy = t + 1;
                }
                SsbOp::SfencePcommitSfence => {
                    // The leading fence orders the drained writebacks;
                    // then the pcommit issues and its ack gates the next
                    // epoch.
                    let issue = t.max(sp.drain_visible_frontier);
                    if let Some(l) = self.vislog.as_mut() {
                        l.push(VisEvent {
                            at: issue,
                            op: VisOp::Fence,
                        });
                        l.push(VisEvent {
                            at: issue,
                            op: VisOp::Pcommit,
                        });
                    }
                    let mut done = self.mem.pcommit(issue);
                    // Ack faults apply here too: a delayed ack holds the
                    // next epoch's gate; a duplicate becomes one more
                    // pending acknowledgement for later fences.
                    if let Some(f) = self.faults.as_mut() {
                        if let Some(Fault::PcommitAckDelay { extra }) = f.draw(FaultSite::AckReturn)
                        {
                            done += extra;
                        }
                        if let Some(Fault::PcommitAckDuplicate { redelivery }) =
                            f.draw(FaultSite::AckDuplicate)
                        {
                            self.pending_pcommits.push(done + redelivery);
                        }
                    }
                    let inflight =
                        1 + self.pending_pcommits.iter().filter(|&&pt| pt > now).count() as u64;
                    self.stats.max_inflight_pcommits =
                        self.stats.max_inflight_pcommits.max(inflight);
                    if let Some(g) = sp.gates.front_mut() {
                        if g.ready_at.is_none() {
                            g.ready_at = Some(done);
                        }
                    }
                    sp.drain_busy = issue + 1;
                }
            }
            self.probe.emit(ProbeEvent::SsbOccupancy {
                now,
                occupancy: sp.ssb.len(),
                capacity: sp.cfg.ssb.entries,
            });
            progressed = true;
        }

        // Bloom filter resets on exiting speculative execution — once
        // the post-exit drain finishes, so no buffered store can lose
        // its filter bits (no false negatives). Stores that drained
        // before the reset leave stale bits behind: the false-positive
        // source the paper identifies in Fig. 14.
        if !sp.speculating && sp.ssb.is_empty() && sp.bloom_dirty {
            sp.bloom.reset();
            sp.bloom_dirty = false;
            progressed = true;
        }
        Ok(progressed)
    }

    // ---- idle-time skipping ------------------------------------------------

    /// The next cycle at which anything is scheduled to happen, or
    /// `None` when the pipeline is wedged (no progress possible, ever).
    fn next_event_time(&self) -> Option<Cycle> {
        let mut t = Cycle::MAX;
        for e in &self.rob {
            if let EState::Exec(d) = e.state {
                if d > self.now {
                    t = t.min(d);
                }
            }
        }
        for &p in self
            .pending_flushes
            .iter()
            .chain(self.pending_pcommits.iter())
        {
            if p > self.now {
                t = t.min(p);
            }
        }
        if !self.store_buffer.is_empty() && self.sb_busy > self.now {
            t = t.min(self.sb_busy);
        }
        if let Some(sp) = &self.sp {
            for g in &sp.gates {
                if let Some(r) = g.ready_at {
                    if r > self.now {
                        t = t.min(r);
                    }
                }
            }
            if !sp.ssb.is_empty() && sp.drain_busy > self.now {
                t = t.min(sp.drain_busy);
            }
            if sp.drain_visible_frontier > self.now {
                t = t.min(sp.drain_visible_frontier);
            }
        }
        (t != Cycle::MAX).then_some(t)
    }
}

/// Why retirement stopped this cycle (stall attribution).
#[derive(Debug, Default, Clone, Copy)]
struct RetireBlock {
    progressed: bool,
    fence: bool,
    ssb_full: bool,
    checkpoint: bool,
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    //! The in-crate half of the cycle-equivalence gate: the fast
    //! skip-ahead [`crate::Pipeline`] must reproduce this frozen
    //! stepper's `SimResult` exactly — cycles, every counter, and crash
    //! verdicts — over random traces, fault plans, and rollbacks. The
    //! full 7×4 bench grid runs in `spp-bench`
    //! (`tests/cycle_equivalence.rs`); the properties here cover the
    //! corners a fixed grid misses.

    use super::*;
    use crate::Pipeline;
    use proptest::prelude::*;
    use spp_mem::{FaultSpec, MemConfig};

    fn with_plan(base: CpuConfig, plan: Option<FaultSpec>) -> CpuConfig {
        CpuConfig {
            mem: MemConfig {
                fault: plan,
                ..base.mem
            },
            ..base
        }
    }

    /// Runs both steppers and asserts exact `SimResult` equality (or,
    /// on failure, the same error kind).
    fn assert_equivalent(events: &[Event], cfg: CpuConfig) {
        let fast = Pipeline::new(events, cfg).try_run();
        let slow = ReferencePipeline::new(events, cfg).try_run();
        match (fast, slow) {
            (Ok(f), Ok(s)) => assert_eq!(f, s, "SimResult diverged (sp={})", cfg.sp.is_some()),
            (Err(f), Err(s)) => assert_eq!(f.kind, s.kind, "error kind diverged"),
            (f, s) => panic!(
                "verdict diverged: fast={:?} reference={:?}",
                f.map(|r| r.cpu.cycles),
                s.map(|r| r.cpu.cycles)
            ),
        }
    }

    fn barrier_trace(n: u64) -> Vec<Event> {
        let mut ev = Vec::new();
        for i in 0..n {
            let a = PAddr::new(4096 + i * 64);
            ev.push(Event::Store {
                addr: a,
                size: 8,
                value: i,
            });
            ev.push(Event::Clwb { addr: a });
            ev.push(Event::Sfence);
            ev.push(Event::Pcommit);
            ev.push(Event::Sfence);
            for j in 0..4 {
                let b = PAddr::new(1 << 20 | (4096 + (i * 4 + j) * 64));
                ev.push(Event::Store {
                    addr: b,
                    size: 8,
                    value: i,
                });
            }
            ev.push(Event::Compute(40));
        }
        ev
    }

    /// `logp`-shaped trace (pcommits, no fences): the shape whose
    /// unbounded pending sets the fast core prunes — exactly where an
    /// over-eager prune would first diverge.
    fn logp_trace(n: u64) -> Vec<Event> {
        let mut ev = Vec::new();
        for i in 0..n {
            let a = PAddr::new(4096 + (i % 64) * 64);
            ev.push(Event::Store {
                addr: a,
                size: 8,
                value: i,
            });
            ev.push(Event::Clwb { addr: a });
            ev.push(Event::Pcommit);
            ev.push(Event::Compute(4));
        }
        ev
    }

    #[test]
    fn directed_traces_match_across_configs_and_plans() {
        for events in [barrier_trace(40), logp_trace(200)] {
            for base in [CpuConfig::baseline(), CpuConfig::with_sp()] {
                for plan in [None, Some(FaultSpec::quiet(3)), Some(FaultSpec::storm(3))] {
                    assert_equivalent(&events, with_plan(base, plan));
                }
            }
        }
    }

    /// Lockstep equality: both steppers must agree on *every*
    /// intermediate cycle (not just the final result), including across
    /// coherence-triggered rollbacks injected at identical points.
    #[test]
    fn lockstep_with_rollbacks_stays_cycle_identical() {
        let t = barrier_trace(40);
        let cfg = CpuConfig::with_sp();
        let mut fast = Pipeline::new(&t, cfg);
        let mut slow = ReferencePipeline::new(&t, cfg);
        let mut rolled = false;
        for i in 0..200_000 {
            if fast.is_done() {
                break;
            }
            fast.step().unwrap();
            slow.step().unwrap();
            assert_eq!(fast.now(), slow.now(), "clocks diverged at step {i}");
            if i % 7 == 0 {
                let addr = PAddr::new(1 << 20 | (4096 + (i / 7 % 40) * 64));
                let a = fast.inject_coherence(addr.block());
                let b = slow.inject_coherence(addr.block());
                assert_eq!(a, b, "rollback verdicts diverged at step {i}");
                rolled |= a;
            }
        }
        assert!(rolled, "no rollback triggered; the test is vacuous");
        assert!(fast.is_done() && slow.is_done());
        assert_eq!(fast.result(), slow.result());
    }

    /// A wedged machine must fail identically (typed watchdog error at
    /// the same bound), not just a healthy one succeed identically.
    #[test]
    fn watchdog_verdicts_match() {
        let t = vec![Event::Sfence, Event::Compute(8)];
        let cfg = CpuConfig {
            watchdog_cycles: 5_000,
            ..with_plan(CpuConfig::with_sp(), Some(FaultSpec::wedge(1)))
        };
        assert_equivalent(&t, cfg);
    }

    // ---- random traces (proptest) -----------------------------------

    fn arb_event() -> impl Strategy<Value = Event> {
        let addr = (0u64..64).prop_map(|b| PAddr::new(4096 + b * 64 + 8 * (b % 8)));
        prop_oneof![
            (1u32..20).prop_map(Event::Compute),
            (addr.clone(), any::<bool>()).prop_map(|(addr, dep)| Event::Load {
                addr,
                size: 8,
                dep
            }),
            (addr.clone(), 0u64..1000).prop_map(|(addr, value)| Event::Store {
                addr,
                size: 8,
                value
            }),
            addr.clone().prop_map(|a| Event::Clwb { addr: a }),
            addr.clone().prop_map(|a| Event::ClflushOpt { addr: a }),
            addr.prop_map(|a| Event::Clflush { addr: a }),
            Just(Event::Pcommit),
            Just(Event::Sfence),
            Just(Event::Mfence),
        ]
    }

    fn arb_plan() -> impl Strategy<Value = Option<FaultSpec>> {
        prop_oneof![
            Just(None),
            (0u64..1 << 48).prop_map(|s| Some(FaultSpec::quiet(s))),
            (0u64..1 << 48).prop_map(|s| Some(FaultSpec::storm(s))),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn random_traces_are_cycle_equivalent(
            events in proptest::collection::vec(arb_event(), 0..400),
            sp in any::<bool>(),
            plan in arb_plan(),
        ) {
            let base = if sp { CpuConfig::with_sp() } else { CpuConfig::baseline() };
            assert_equivalent(&events, with_plan(base, plan));
        }
    }
}
