//! The unified simulation façade.
//!
//! [`Simulator`] is the one front door to a simulation run: it owns the
//! trace, the configuration, an optional pre-built memory system, and an
//! optional observability probe, validates everything up front, and
//! returns a typed result. The free functions `simulate`/`try_simulate`
//! and direct `Pipeline` construction remain for compatibility but are
//! deprecated in favour of:
//!
//! ```
//! use spp_cpu::{CpuConfig, Simulator};
//! use spp_pmem::Event;
//!
//! let events = [Event::Compute(16)];
//! let r = Simulator::new(&events)
//!     .config(CpuConfig::with_sp())
//!     .run()
//!     .expect("valid config");
//! assert_eq!(r.cpu.committed_uops, 16);
//! ```

use spp_mem::MemorySystem;
use spp_obs::ProbeHandle;
use spp_pmem::Event;

use crate::config::CpuConfig;
use crate::error::{DiagnosticSnapshot, SimError, SimErrorKind};
use crate::pipeline::Pipeline;
use crate::stats::SimResult;

/// Builder for one simulation run over a recorded micro-op trace.
///
/// Defaults: [`CpuConfig::baseline`], a private memory system derived
/// from the configuration, and no probe. Every setter consumes and
/// returns the builder; [`Simulator::run`] (or [`Simulator::build`] for
/// step-level control) finishes it.
#[derive(Debug)]
pub struct Simulator<'t> {
    events: &'t [Event],
    cfg: CpuConfig,
    mem: Option<MemorySystem>,
    probe: ProbeHandle,
}

impl<'t> Simulator<'t> {
    /// Starts a builder over `events` with the baseline configuration.
    pub fn new(events: &'t [Event]) -> Self {
        Simulator {
            events,
            cfg: CpuConfig::baseline(),
            mem: None,
            probe: ProbeHandle::disabled(),
        }
    }

    /// Sets the core configuration (baseline, SP256, or a custom point).
    pub fn config(mut self, cfg: CpuConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Supplies an explicitly constructed memory system — e.g. one
    /// sharing its memory controller with other cores. Without this the
    /// simulator builds a private one from the configuration.
    pub fn memory(mut self, mem: MemorySystem) -> Self {
        self.mem = Some(mem);
        self
    }

    /// Attaches an observability probe (see `spp-obs`). Probes observe
    /// epoch lifecycle, pcommit latency, fence stalls, and buffer
    /// occupancy; they never change simulated timing or architectural
    /// state.
    pub fn probe(mut self, probe: ProbeHandle) -> Self {
        self.probe = probe;
        self
    }

    /// Validates the configuration and builds the pipeline without
    /// running it (for step-level tests and harnesses).
    ///
    /// # Errors
    ///
    /// Returns [`SimErrorKind::InvalidConfig`] if the memory
    /// configuration is structurally invalid.
    pub fn build(self) -> Result<Pipeline<'t>, SimError> {
        let invalid = |error| SimError {
            kind: SimErrorKind::InvalidConfig { error },
            snapshot: Box::new(DiagnosticSnapshot::default()),
        };
        let mem = match self.mem {
            Some(m) => {
                // An explicit memory system was already validated at its
                // own construction; still reject a contradictory core
                // config early.
                self.cfg.mem.validate().map_err(invalid)?;
                m
            }
            None => MemorySystem::try_new(self.cfg.mem).map_err(invalid)?,
        };
        let mut p = Pipeline::with_memory(self.events, self.cfg, mem);
        if self.probe.is_enabled() {
            p.set_probe(self.probe);
        }
        Ok(p)
    }

    /// Builds the pipeline and runs it to completion.
    ///
    /// # Errors
    ///
    /// Returns [`SimErrorKind::InvalidConfig`] for a rejected
    /// configuration, or the pipeline's [`SimError`] (watchdog expiry,
    /// deadlock, broken invariant) if the run fails.
    pub fn run(self) -> Result<SimResult, SimError> {
        self.build()?.try_run()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use spp_mem::{shared_mem_ctrl, MemConfig, MemConfigError};
    use spp_obs::Collector;
    use spp_pmem::PAddr;

    fn barrier_trace(n: u64) -> Vec<Event> {
        let mut ev = Vec::new();
        for i in 0..n {
            let a = PAddr::new(4096 + i * 64);
            ev.push(Event::Store {
                addr: a,
                size: 8,
                value: i,
            });
            ev.push(Event::Clwb { addr: a });
            ev.push(Event::Sfence);
            ev.push(Event::Pcommit);
            ev.push(Event::Sfence);
            ev.push(Event::Compute(50));
        }
        ev
    }

    #[test]
    fn facade_matches_direct_pipeline() {
        let t = barrier_trace(20);
        for cfg in [CpuConfig::baseline(), CpuConfig::with_sp()] {
            let direct = Pipeline::new(&t, cfg).try_run().unwrap();
            let facade = Simulator::new(&t).config(cfg).run().unwrap();
            assert_eq!(direct, facade);
        }
    }

    #[test]
    fn invalid_config_is_rejected_before_the_first_cycle() {
        let t = barrier_trace(1);
        let cfg = CpuConfig {
            mem: MemConfig {
                nvmm_banks: 0,
                ..MemConfig::paper()
            },
            ..CpuConfig::baseline()
        };
        let err = Simulator::new(&t).config(cfg).run().unwrap_err();
        assert_eq!(
            err.kind,
            SimErrorKind::InvalidConfig {
                error: MemConfigError::ZeroBanks
            }
        );
        assert!(err.to_string().contains("nvmm_banks"));
    }

    #[test]
    fn explicit_memory_system_is_used() {
        let t = barrier_trace(10);
        let cfg = CpuConfig::baseline();
        let mc = shared_mem_ctrl(cfg.mem).unwrap();
        let r = Simulator::new(&t)
            .config(cfg)
            .memory(MemorySystem::with_shared_mc(cfg.mem, mc.clone()))
            .run()
            .unwrap();
        // The shared controller saw this core's traffic.
        assert_eq!(mc.borrow().stats().pcommits, r.mc.pcommits);
        assert!(r.mc.pcommits > 0);
    }

    #[test]
    fn probe_attaches_and_observes_without_changing_the_result() {
        let t = barrier_trace(20);
        let plain = Simulator::new(&t)
            .config(CpuConfig::with_sp())
            .run()
            .unwrap();
        let collector = Collector::shared();
        let probed = Simulator::new(&t)
            .config(CpuConfig::with_sp())
            .probe(ProbeHandle::new(collector.clone()))
            .run()
            .unwrap();
        assert_eq!(plain, probed);
        let summary = collector.borrow().summary();
        assert!(summary.epochs_begun > 0, "probe must see epochs");
        assert!(summary.pcommits > 0, "probe must see pcommits");
        assert_eq!(summary.epochs_begun, probed.cpu.epochs);
    }
}
