//! Pipeline configuration (Table 2) and speculative-persistence options.

use spp_core::SsbConfig;
use spp_mem::{Cycle, MemConfig};

/// Speculative persistence (SP) configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpConfig {
    /// Speculative store buffer geometry (Table 3).
    pub ssb: SsbConfig,
    /// Checkpoint buffer entries (Table 2: 4).
    pub checkpoints: usize,
    /// Bloom filter size in bytes (§4.2.2: 512).
    pub bloom_bytes: usize,
    /// Use the combined `sfence-pcommit-sfence` SSB opcode so a whole
    /// persist barrier costs one checkpoint (§4.2.2). Disabling it is
    /// the ablation where every fence takes its own checkpoint.
    pub combine_barrier: bool,
}

impl SpConfig {
    /// The paper's SP256 configuration.
    pub fn paper_default() -> Self {
        SpConfig {
            ssb: SsbConfig::paper_default(),
            checkpoints: 4,
            bloom_bytes: 512,
            combine_barrier: true,
        }
    }

    /// SP with a Table 3 SSB size (Fig. 13 sweep).
    pub fn with_ssb_entries(entries: usize) -> Self {
        SpConfig {
            ssb: SsbConfig::table3(entries),
            ..Self::paper_default()
        }
    }
}

/// Full core configuration (Table 2).
#[derive(Debug, Clone, Copy)]
pub struct CpuConfig {
    /// Fetch/dispatch/issue/retire width (4).
    pub width: usize,
    /// Reorder-buffer entries (128).
    pub rob_entries: usize,
    /// Fetch-queue entries (48).
    pub fetch_queue: usize,
    /// Issue-window entries (48): how deep into the ROB the scheduler
    /// looks for ready micro-ops.
    pub issue_queue: usize,
    /// Load/store-queue entries (48): memory micro-ops live in the ROB
    /// and an LSQ slot simultaneously.
    pub lsq_entries: usize,
    /// Post-retirement store buffer entries.
    pub store_buffer: usize,
    /// Memory-system configuration (Table 2).
    pub mem: MemConfig,
    /// Speculative persistence; `None` reproduces the non-speculative
    /// baseline (the Log+P+Sf bars of Fig. 8).
    pub sp: Option<SpConfig>,
    /// Forward-progress watchdog: if no micro-op retires for more than
    /// this many cycles while work remains, the simulation stops with a
    /// typed [`crate::SimError`] instead of hanging. `0` disables the
    /// watchdog. The default (one million cycles) sits far above any
    /// legitimate stall in the modelled machine (worst observed:
    /// tens of thousands of cycles for a contended WPQ drain).
    pub watchdog_cycles: Cycle,
}

impl CpuConfig {
    /// The paper's baseline core without speculation.
    pub fn baseline() -> Self {
        CpuConfig {
            width: 4,
            rob_entries: 128,
            fetch_queue: 48,
            issue_queue: 48,
            lsq_entries: 48,
            store_buffer: 32,
            mem: MemConfig::paper(),
            sp: None,
            watchdog_cycles: 1_000_000,
        }
    }

    /// The baseline plus SP256 (the paper's headline configuration).
    pub fn with_sp() -> Self {
        CpuConfig {
            sp: Some(SpConfig::paper_default()),
            ..Self::baseline()
        }
    }
}

impl Default for CpuConfig {
    fn default() -> Self {
        Self::baseline()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = CpuConfig::baseline();
        assert_eq!(
            (c.width, c.rob_entries, c.fetch_queue, c.lsq_entries),
            (4, 128, 48, 48)
        );
        assert!(c.sp.is_none());
        let sp = CpuConfig::with_sp().sp.unwrap();
        assert_eq!(sp.ssb.entries, 256);
        assert_eq!(sp.checkpoints, 4);
        assert_eq!(sp.bloom_bytes, 512);
        assert!(sp.combine_barrier);
    }

    #[test]
    fn fig13_sweep_points() {
        for entries in [32, 64, 128, 256, 512, 1024] {
            let sp = SpConfig::with_ssb_entries(entries);
            assert_eq!(sp.ssb.entries, entries);
        }
    }
}
