//! # spp-cpu — the trace-driven out-of-order core
//!
//! The pipeline timing model of the `specpersist` reproduction of
//! *"Hiding the Long Latency of Persist Barriers Using Speculative
//! Execution"* (ISCA '17): a four-wide out-of-order core (Table 2) that
//! replays micro-op traces recorded by `spp-pmem`/`spp-workloads`
//! through the `spp-mem` memory system, with the paper's *speculative
//! persistence* (SP) built from the `spp-core` mechanisms.
//!
//! ```
//! use spp_cpu::{CpuConfig, Simulator};
//! use spp_pmem::{PmemEnv, Variant};
//!
//! // Record a tiny persist-barrier trace...
//! let mut env = PmemEnv::new(Variant::LogPSf);
//! let a = env.alloc_block();
//! env.store_u64(a, 1);
//! env.clwb(a);
//! env.persist_barrier();
//! let trace = env.take_trace();
//!
//! // ...and time it with and without speculative persistence.
//! let base = Simulator::new(&trace.events).run().expect("sound config");
//! let sp = Simulator::new(&trace.events)
//!     .config(CpuConfig::with_sp())
//!     .run()
//!     .expect("sound config");
//! assert!(base.cpu.cycles > 0);
//! assert_eq!(base.cpu.committed_uops, sp.cpu.committed_uops);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Simulation hot paths must surface faults as typed errors, not abort.
#![warn(clippy::unwrap_used, clippy::expect_used)]

mod config;
mod error;
mod multi;
mod pipeline;
#[cfg(any(test, feature = "reference-stepper"))]
mod reference;
mod simulator;
mod stats;
mod uop;
pub mod vislog;

use spp_pmem::Event;

pub use config::{CpuConfig, SpConfig};
pub use error::{DiagnosticSnapshot, SimError, SimErrorKind};
pub use multi::{MultiCore, MultiCoreError, DEFAULT_STORM_BOUND};
pub use pipeline::Pipeline;
#[cfg(any(test, feature = "reference-stepper"))]
pub use reference::ReferencePipeline;
pub use simulator::Simulator;
pub use stats::{CpuStats, SimResult};
pub use uop::{TraceCursor, Uop, UopKind};
pub use vislog::{reconstruct, VisEvent, VisOp};

/// Replays `events` through the pipeline and returns the statistics.
///
/// # Panics
///
/// Panics if the simulation fails (watchdog, deadlock, or broken
/// invariant); use [`Simulator::run`] to handle the error.
#[deprecated(
    since = "0.1.0",
    note = "use the `Simulator` builder: `Simulator::new(events).config(cfg).run()`"
)]
pub fn simulate(events: &[Event], cfg: &CpuConfig) -> SimResult {
    match Simulator::new(events).config(*cfg).run() {
        Ok(r) => r,
        Err(e) => panic!("{e}"),
    }
}

/// Replays `events` through the pipeline, surfacing simulation failures
/// (watchdog expiry, deadlock, broken invariants) as typed errors with
/// a diagnostic snapshot instead of panicking.
///
/// # Errors
///
/// Returns the pipeline's [`SimError`] on failure.
#[deprecated(
    since = "0.1.0",
    note = "use the `Simulator` builder: `Simulator::new(events).config(cfg).run()`"
)]
pub fn try_simulate(events: &[Event], cfg: &CpuConfig) -> Result<SimResult, SimError> {
    Simulator::new(events).config(*cfg).run()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use spp_pmem::{PAddr, PmemEnv, Variant};

    /// Test-local shorthand on the non-deprecated façade (shadows the
    /// deprecated free function from the glob import).
    fn simulate(events: &[Event], cfg: &CpuConfig) -> SimResult {
        Simulator::new(events).config(*cfg).run().unwrap()
    }

    fn compute(n: u32) -> Event {
        Event::Compute(n)
    }

    #[test]
    fn empty_trace_finishes_immediately() {
        let r = simulate(&[], &CpuConfig::baseline());
        assert_eq!(r.cpu.committed_uops, 0);
    }

    #[test]
    fn compute_throughput_is_width_limited() {
        let events = vec![compute(4000)];
        let r = simulate(&events, &CpuConfig::baseline());
        assert_eq!(r.cpu.committed_uops, 4000);
        // 4-wide: ~1000 cycles plus pipeline fill.
        assert!(
            r.cpu.cycles >= 1000 && r.cpu.cycles < 1100,
            "cycles = {}",
            r.cpu.cycles
        );
    }

    #[test]
    fn dependent_load_chain_serializes_on_memory() {
        // 64 dependent loads to distinct cold blocks: each waits for the
        // previous, each misses to NVMM (~146 cycles).
        let events: Vec<Event> = (0..64)
            .map(|i| Event::Load {
                addr: PAddr::new(i * 64 + 4096),
                size: 8,
                dep: true,
            })
            .collect();
        let r = simulate(&events, &CpuConfig::baseline());
        assert!(
            r.cpu.cycles > 64 * 140,
            "chain must serialize, got {}",
            r.cpu.cycles
        );
        assert_eq!(r.mem.mem_accesses, 64);
    }

    #[test]
    fn independent_loads_overlap() {
        let events: Vec<Event> = (0..64)
            .map(|i| Event::Load {
                addr: PAddr::new(i * 64 + 4096),
                size: 8,
                dep: false,
            })
            .collect();
        let r = simulate(&events, &CpuConfig::baseline());
        assert!(
            r.cpu.cycles < 64 * 100,
            "independent misses must overlap, got {}",
            r.cpu.cycles
        );
    }

    /// Builds a trace of `n` write-ahead-logging-style persist barriers:
    /// store; clwb; sfence; pcommit; sfence; trailing compute.
    fn barrier_trace(n: u64, tail_compute: u32) -> Vec<Event> {
        let mut ev = Vec::new();
        for i in 0..n {
            let a = PAddr::new(4096 + i * 64);
            ev.push(Event::Store {
                addr: a,
                size: 8,
                value: i,
            });
            ev.push(Event::Clwb { addr: a });
            ev.push(Event::Sfence);
            ev.push(Event::Pcommit);
            ev.push(Event::Sfence);
            ev.push(compute(tail_compute));
        }
        ev
    }

    #[test]
    fn fences_stall_the_baseline() {
        let events = barrier_trace(10, 50);
        let r = simulate(&events, &CpuConfig::baseline());
        assert!(r.cpu.fence_stall_cycles > 0);
        assert!(r.cpu.cycles > 10 * 315, "each barrier waits a WPQ drain");
        assert_eq!(r.cpu.pcommits, 10);
        assert_eq!(r.cpu.fences, 20);
    }

    #[test]
    fn sp_hides_persist_barrier_latency() {
        let events = barrier_trace(50, 200);
        let base = simulate(&events, &CpuConfig::baseline());
        let sp = simulate(&events, &CpuConfig::with_sp());
        assert_eq!(base.cpu.committed_uops, sp.cpu.committed_uops);
        assert!(
            sp.cpu.cycles * 10 < base.cpu.cycles * 9,
            "SP ({}) should beat baseline ({}) clearly",
            sp.cpu.cycles,
            base.cpu.cycles
        );
        assert!(sp.cpu.epochs > 0, "speculation must trigger");
        assert!(sp.ssb.inserts > 0, "stores must pass through the SSB");
    }

    #[test]
    fn sp_epochs_commit_and_drain_fully() {
        let events = barrier_trace(20, 100);
        let r = simulate(&events, &CpuConfig::with_sp());
        assert_eq!(r.cpu.rollbacks, 0);
        assert!(r.checkpoints.taken >= r.cpu.epochs);
        // All pcommits eventually reached the memory controller.
        assert_eq!(r.mc.pcommits, 20);
    }

    #[test]
    fn logp_style_trace_has_concurrent_pcommits() {
        // pcommits with no fences never stall; several can be in flight.
        let mut events = Vec::new();
        for i in 0..8 {
            let a = PAddr::new(4096 + i * 64);
            events.push(Event::Store {
                addr: a,
                size: 8,
                value: i,
            });
            events.push(Event::Clwb { addr: a });
            events.push(Event::Pcommit);
            events.push(compute(4));
        }
        let r = simulate(&events, &CpuConfig::baseline());
        assert!(
            r.cpu.max_inflight_pcommits >= 2,
            "expected overlap, got {}",
            r.cpu.max_inflight_pcommits
        );
        assert_eq!(r.cpu.fence_stall_cycles, 0);
    }

    #[test]
    fn clustered_barriers_use_multiple_checkpoints() {
        // Four barriers back-to-back (a WAL transaction's shape): SP
        // must chain child epochs rather than stalling at each fence.
        let mut events = Vec::new();
        for i in 0..4u64 {
            let a = PAddr::new(4096 + i * 64);
            events.push(Event::Store {
                addr: a,
                size: 8,
                value: i,
            });
            events.push(Event::Clwb { addr: a });
            events.push(Event::Sfence);
            events.push(Event::Pcommit);
            events.push(Event::Sfence);
        }
        events.push(compute(500));
        let r = simulate(&events, &CpuConfig::with_sp());
        assert!(
            r.cpu.epochs >= 3,
            "expected chained epochs, got {}",
            r.cpu.epochs
        );
        assert!(r.checkpoints.high_water >= 2);
    }

    #[test]
    fn ssb_forwarding_serves_speculative_loads() {
        // Store then load the same address inside the speculative
        // shadow: the load must forward from the SSB.
        let a = PAddr::new(8192);
        let mut events = vec![
            Event::Store {
                addr: a,
                size: 8,
                value: 1,
            },
            Event::Clwb { addr: a },
            Event::Sfence,
            Event::Pcommit,
            Event::Sfence,
            // In-shadow:
            Event::Store {
                addr: a,
                size: 8,
                value: 2,
            },
            compute(400), // let the store retire into the SSB first
            Event::Load {
                addr: a,
                size: 8,
                dep: false,
            },
        ];
        events.push(compute(100));
        let r = simulate(&events, &CpuConfig::with_sp());
        assert!(
            r.cpu.ssb_forwards + r.cpu.lsq_forwards >= 1,
            "load in shadow must forward"
        );
    }

    #[test]
    fn tiny_ssb_limits_speculation_but_stays_correct() {
        let events = barrier_trace(20, 400);
        let big = simulate(
            &events,
            &CpuConfig {
                sp: Some(SpConfig::with_ssb_entries(256)),
                ..CpuConfig::baseline()
            },
        );
        let tiny = simulate(
            &events,
            &CpuConfig {
                sp: Some(SpConfig::with_ssb_entries(32)),
                ..CpuConfig::baseline()
            },
        );
        assert_eq!(big.cpu.committed_uops, tiny.cpu.committed_uops);
    }

    #[test]
    fn coherence_conflict_rolls_back_and_reexecutes() {
        let events = barrier_trace(4, 50);
        let mut p = Pipeline::new(&events, CpuConfig::with_sp());
        // Run until speculation is active, then snoop a block the
        // speculative store touched.
        let target = PAddr::new(4096 + 64).block(); // 2nd barrier's store
        let mut rolled = false;
        for _ in 0..200_000 {
            if p.is_done() {
                break;
            }
            p.step().unwrap();
            if !rolled && p.inject_coherence(target) {
                rolled = true;
            }
        }
        assert!(p.is_done(), "pipeline must finish after rollback");
        let r = p.result();
        if rolled {
            assert_eq!(r.cpu.rollbacks, 1);
            assert!(r.blt.conflicts >= 1);
        }
        // Whatever happened, every micro-op still committed exactly once.
        let base = simulate(&events, &CpuConfig::baseline());
        assert_eq!(r.cpu.committed_uops, base.cpu.committed_uops);
    }

    #[test]
    fn legacy_clflush_serializes_retirement() {
        // A clflush of a dirty block holds retirement until the
        // writeback is visible; clflushopt (posted) does not.
        let a = PAddr::new(4096);
        let mk = |legacy: bool| {
            let mut ev = vec![Event::Store {
                addr: a,
                size: 8,
                value: 1,
            }];
            ev.push(if legacy {
                Event::Clflush { addr: a }
            } else {
                Event::ClflushOpt { addr: a }
            });
            ev.push(compute(8));
            ev
        };
        let posted = simulate(&mk(false), &CpuConfig::baseline());
        let serial = simulate(&mk(true), &CpuConfig::baseline());
        assert!(
            serial.cpu.cycles > posted.cpu.cycles + 20,
            "clflush ({}) must serialize vs clflushopt ({})",
            serial.cpu.cycles,
            posted.cpu.cycles
        );
    }

    #[test]
    fn snoop_without_speculation_is_ignored() {
        let events = vec![compute(10)];
        let mut p = Pipeline::new(&events, CpuConfig::with_sp());
        assert!(!p.inject_coherence(spp_pmem::BlockId::new(64)));
    }

    #[test]
    fn real_workload_trace_matches_uop_count_across_configs() {
        // End-to-end: a real linked-list trace through both configs.
        let mut env = PmemEnv::new(Variant::LogPSf);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
        let mut w = spp_workloads::make_workload(spp_workloads::BenchId::LinkedList);
        env.set_recording(false);
        w.setup(&mut env, &mut rng, 50);
        env.set_recording(true);
        for op in 0..20 {
            w.run_op(&mut env, &mut rng, op);
        }
        let trace = env.take_trace();
        let base = simulate(&trace.events, &CpuConfig::baseline());
        let sp = simulate(&trace.events, &CpuConfig::with_sp());
        assert_eq!(base.cpu.committed_uops, trace.counts.total());
        assert_eq!(sp.cpu.committed_uops, trace.counts.total());
        assert!(sp.cpu.cycles <= base.cpu.cycles);
        assert!(base.cpu.pcommits == trace.counts.pcommits);
    }
}
