//! Simulation statistics: the raw counters behind Figs. 8-14.

use spp_core::{BloomStats, BltStats, CheckpointStats, SsbStats};
use spp_mem::{Cycle, FaultStats, McStats, MemStats};

use crate::uop::UopKind;

/// Everything a simulation run measures.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CpuStats {
    /// Total execution cycles (Fig. 8 numerator).
    pub cycles: Cycle,
    /// Committed micro-ops (Fig. 9 numerator). Speculatively retired
    /// micro-ops later rolled back are subtracted.
    pub committed_uops: u64,
    /// Cycles in which the fetch queue held micro-ops but none could
    /// dispatch (back-end pressure; Fig. 10 numerator).
    pub fetch_stall_cycles: Cycle,
    /// Cycles retirement was blocked at a fence waiting for persist
    /// visibility.
    pub fence_stall_cycles: Cycle,
    /// Cycles retirement was blocked because the SSB was full.
    pub ssb_full_stall_cycles: Cycle,
    /// Cycles retirement was blocked waiting for a free checkpoint.
    pub checkpoint_stall_cycles: Cycle,
    /// Committed loads.
    pub loads: u64,
    /// Committed stores.
    pub stores: u64,
    /// Committed flushes (clwb + clflushopt + clflush).
    pub flushes: u64,
    /// Committed pcommits.
    pub pcommits: u64,
    /// Committed fences.
    pub fences: u64,
    /// Maximum pcommits simultaneously outstanding (Fig. 11).
    pub max_inflight_pcommits: u64,
    /// Stores (including clwb/clflush, per the paper) retired while at
    /// least one pcommit was outstanding (Fig. 12 numerator).
    pub stores_while_pcommit: u64,
    /// Speculative epochs entered.
    pub epochs: u64,
    /// Rollbacks taken (coherence conflicts).
    pub rollbacks: u64,
    /// Micro-ops squashed by rollbacks.
    pub squashed_uops: u64,
    /// Loads forwarded from the SSB.
    pub ssb_forwards: u64,
    /// Loads forwarded from older in-flight stores in the window.
    pub lsq_forwards: u64,
}

/// Per-epoch breakdown of speculatively retired micro-ops, kept while
/// the epoch is live. A rollback squashes every live epoch, so it must
/// retract exactly this much from [`CpuStats`] — the total *and* the
/// per-class counters, or squashed stores would stay counted as
/// committed stores.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct EpochRetired {
    pub(crate) uops: u64,
    pub(crate) loads: u64,
    pub(crate) stores: u64,
    pub(crate) flushes: u64,
    pub(crate) pcommits: u64,
    pub(crate) fences: u64,
}

impl EpochRetired {
    /// Attributes one retired micro-op of `kind` to this epoch.
    pub(crate) fn note(&mut self, kind: UopKind) {
        self.uops += 1;
        match kind {
            UopKind::Compute => {}
            UopKind::Load { .. } => self.loads += 1,
            UopKind::Store { .. } => self.stores += 1,
            UopKind::Clwb { .. } | UopKind::ClflushOpt { .. } | UopKind::Clflush { .. } => {
                self.flushes += 1
            }
            UopKind::Pcommit => self.pcommits += 1,
            UopKind::Sfence | UopKind::Mfence => self.fences += 1,
        }
    }

    /// Folds another epoch's breakdown into this one (rollback sums
    /// every live epoch before retracting).
    pub(crate) fn merge(&mut self, other: EpochRetired) {
        self.uops += other.uops;
        self.loads += other.loads;
        self.stores += other.stores;
        self.flushes += other.flushes;
        self.pcommits += other.pcommits;
        self.fences += other.fences;
    }

    /// Un-commits this breakdown from `stats` (the squash half of a
    /// rollback; re-execution re-commits the surviving work).
    pub(crate) fn retract(&self, stats: &mut CpuStats) {
        stats.committed_uops = stats.committed_uops.saturating_sub(self.uops);
        stats.loads = stats.loads.saturating_sub(self.loads);
        stats.stores = stats.stores.saturating_sub(self.stores);
        stats.flushes = stats.flushes.saturating_sub(self.flushes);
        stats.pcommits = stats.pcommits.saturating_sub(self.pcommits);
        stats.fences = stats.fences.saturating_sub(self.fences);
    }
}

/// Aggregated result of a simulation.
///
/// Derives `PartialEq`/`Eq` so probe-neutrality tests can assert that an
/// instrumented run commits byte-identical state and cycles to an
/// uninstrumented one.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimResult {
    /// Core counters.
    pub cpu: CpuStats,
    /// Cache-hierarchy counters.
    pub mem: MemStats,
    /// Memory-controller counters.
    pub mc: McStats,
    /// SSB counters (zero when SP is disabled).
    pub ssb: SsbStats,
    /// Bloom-filter counters (zero when SP is disabled).
    pub bloom: BloomStats,
    /// Checkpoint counters (zero when SP is disabled).
    pub checkpoints: CheckpointStats,
    /// BLT counters (zero when SP is disabled).
    pub blt: BltStats,
    /// Injected-fault counters, memory- and pipeline-side streams merged
    /// (all zero when no fault plan is configured).
    pub faults: FaultStats,
}

impl SimResult {
    /// Fig. 14 metric: bloom false positives per query.
    pub fn bloom_false_positive_rate(&self) -> f64 {
        if self.bloom.queries == 0 {
            0.0
        } else {
            self.bloom.false_positives as f64 / self.bloom.queries as f64
        }
    }

    /// Fig. 12 metric: average stores in flight per pcommit.
    pub fn stores_per_pcommit(&self) -> f64 {
        if self.cpu.pcommits == 0 {
            0.0
        } else {
            self.cpu.stores_while_pcommit as f64 / self.cpu.pcommits as f64
        }
    }
}
