//! Multi-programmed multi-core simulation (the paper's future-work
//! direction, §4.1).
//!
//! The paper evaluates single-threaded workloads and leaves
//! multi-threading to future work, but its persist bottleneck — the
//! memory controller's write-pending queue — is a *shared* resource.
//! [`MultiCore`] runs N independent workloads ("multi-programmed": no
//! data sharing, so no coherence traffic) on N cores with private cache
//! hierarchies over one shared memory controller, quantifying how
//! persist barriers from different cores interfere: every core's
//! `pcommit` must drain every core's pending writes.
//!
//! Cores are advanced lagging-core-first, so requests reach the shared
//! controller in near-global time order (the controller clamps the
//! residual skew).

use std::fmt;

use spp_mem::{shared_mem_ctrl, MemConfigError, MemorySystem};
use spp_pmem::Event;

use crate::config::CpuConfig;
use crate::error::SimError;
use crate::pipeline::Pipeline;
use crate::stats::SimResult;

/// Why a [`MultiCore`] could not be constructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum MultiCoreError {
    /// No traces were supplied: there is nothing to simulate.
    NoCores,
    /// The shared memory configuration is structurally invalid.
    Mem(MemConfigError),
}

impl fmt::Display for MultiCoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MultiCoreError::NoCores => f.write_str("at least one core required"),
            MultiCoreError::Mem(e) => write!(f, "invalid memory configuration: {e}"),
        }
    }
}

impl std::error::Error for MultiCoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MultiCoreError::NoCores => None,
            MultiCoreError::Mem(e) => Some(e),
        }
    }
}

/// N cores with private caches sharing one memory controller.
#[derive(Debug)]
pub struct MultiCore<'t> {
    cores: Vec<Pipeline<'t>>,
}

impl<'t> MultiCore<'t> {
    /// Builds one pipeline per trace, all on `cfg`, with a shared
    /// memory controller — rejecting degenerate configurations (no
    /// cores, zero memory banks, zero WPQ entries) at construction time.
    ///
    /// Because construction validates the core set, [`MultiCore::run`]
    /// on a successfully built instance always returns at least one
    /// result.
    ///
    /// # Errors
    ///
    /// Returns [`MultiCoreError::NoCores`] for an empty trace set and
    /// [`MultiCoreError::Mem`] for an invalid memory configuration.
    pub fn try_new(traces: &[&'t [Event]], cfg: CpuConfig) -> Result<Self, MultiCoreError> {
        if traces.is_empty() {
            return Err(MultiCoreError::NoCores);
        }
        let mc = shared_mem_ctrl(cfg.mem).map_err(MultiCoreError::Mem)?;
        let cores = traces
            .iter()
            .map(|t| {
                Pipeline::with_memory(t, cfg, MemorySystem::with_shared_mc(cfg.mem, mc.clone()))
            })
            .collect();
        Ok(MultiCore { cores })
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Runs every core to completion and returns per-core results.
    ///
    /// # Panics
    ///
    /// Panics if any core's simulation fails; use
    /// [`MultiCore::try_run`] to handle the error.
    pub fn run(self) -> Vec<SimResult> {
        match self.try_run() {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }

    /// Runs every core to completion, surfacing the first core
    /// simulation failure (watchdog, deadlock, broken invariant) as a
    /// typed error.
    ///
    /// # Errors
    ///
    /// Returns the [`SimError`] of the first failing core.
    pub fn try_run(mut self) -> Result<Vec<SimResult>, SimError> {
        loop {
            // Advance the laggard among unfinished cores.
            let next = self
                .cores
                .iter()
                .enumerate()
                .filter(|(_, c)| !c.is_done())
                .min_by_key(|(_, c)| c.now())
                .map(|(i, _)| i);
            match next {
                Some(i) => self.cores[i].step()?,
                None => break,
            }
        }
        Ok(self.cores.iter().map(|c| c.result()).collect())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use spp_pmem::PAddr;

    fn simulate(events: &[Event], cfg: &CpuConfig) -> SimResult {
        crate::Simulator::new(events).config(*cfg).run().unwrap()
    }

    fn barrier_trace(n: u64, salt: u64) -> Vec<Event> {
        let mut ev = Vec::new();
        for i in 0..n {
            let a = PAddr::new(4096 + (i + salt * 1000) * 64);
            ev.push(Event::Store {
                addr: a,
                size: 8,
                value: i,
            });
            ev.push(Event::Clwb { addr: a });
            ev.push(Event::Sfence);
            ev.push(Event::Pcommit);
            ev.push(Event::Sfence);
            ev.push(Event::Compute(150));
        }
        ev
    }

    #[test]
    fn single_core_multi_matches_solo() {
        let t = barrier_trace(30, 0);
        let solo = simulate(&t, &CpuConfig::baseline());
        let multi = MultiCore::try_new(&[&t], CpuConfig::baseline())
            .unwrap()
            .run();
        assert_eq!(multi.len(), 1);
        assert_eq!(multi[0].cpu.cycles, solo.cpu.cycles);
        assert_eq!(multi[0].cpu.committed_uops, solo.cpu.committed_uops);
    }

    #[test]
    fn every_core_commits_its_own_trace() {
        let traces: Vec<Vec<Event>> = (0..4).map(|i| barrier_trace(20 + i * 5, i)).collect();
        let refs: Vec<&[Event]> = traces.iter().map(|t| t.as_slice()).collect();
        let results = MultiCore::try_new(&refs, CpuConfig::with_sp())
            .unwrap()
            .run();
        assert_eq!(results.len(), 4);
        for (r, t) in results.iter().zip(&traces) {
            let expect: u64 = t.iter().map(|e| e.micro_ops()).sum();
            assert_eq!(r.cpu.committed_uops, expect);
        }
    }

    #[test]
    fn sharing_the_controller_slows_persist_heavy_cores() {
        // A bank-limited controller makes the interference visible at
        // this scale (the default 32 banks absorb four cores easily).
        let cfg = CpuConfig {
            mem: spp_mem::MemConfig {
                nvmm_banks: 2,
                ..spp_mem::MemConfig::paper()
            },
            ..CpuConfig::baseline()
        };
        let t = barrier_trace(40, 0);
        let solo = simulate(&t, &cfg).cpu.cycles;
        let traces: Vec<Vec<Event>> = (0..4).map(|i| barrier_trace(40, i)).collect();
        let refs: Vec<&[Event]> = traces.iter().map(|x| x.as_slice()).collect();
        let quad = MultiCore::try_new(&refs, cfg).unwrap().run();
        let worst = quad.iter().map(|r| r.cpu.cycles).max().unwrap();
        assert!(
            worst > solo,
            "4 cores' pcommits must contend at the shared WPQ (worst {worst} vs solo {solo})"
        );
    }

    #[test]
    fn sp_helps_under_contention_too() {
        let traces: Vec<Vec<Event>> = (0..2).map(|i| barrier_trace(40, i)).collect();
        let refs: Vec<&[Event]> = traces.iter().map(|x| x.as_slice()).collect();
        let base: u64 = MultiCore::try_new(&refs, CpuConfig::baseline())
            .unwrap()
            .run()
            .iter()
            .map(|r| r.cpu.cycles)
            .max()
            .unwrap();
        let sp: u64 = MultiCore::try_new(&refs, CpuConfig::with_sp())
            .unwrap()
            .run()
            .iter()
            .map(|r| r.cpu.cycles)
            .max()
            .unwrap();
        assert!(
            sp <= base,
            "SP must not lose under contention ({sp} vs {base})"
        );
    }

    #[test]
    fn try_new_reports_empty_core_set() {
        let err = MultiCore::try_new(&[], CpuConfig::baseline()).unwrap_err();
        assert_eq!(err, MultiCoreError::NoCores);
        assert_eq!(err.to_string(), "at least one core required");
    }

    #[test]
    fn try_new_reports_invalid_memory_config() {
        let cfg = CpuConfig {
            mem: spp_mem::MemConfig {
                nvmm_banks: 0,
                ..spp_mem::MemConfig::paper()
            },
            ..CpuConfig::baseline()
        };
        let t = barrier_trace(1, 0);
        let err = MultiCore::try_new(&[&t], cfg).unwrap_err();
        assert_eq!(err, MultiCoreError::Mem(spp_mem::MemConfigError::ZeroBanks));
        assert!(err.to_string().contains("nvmm_banks"));
        assert!(std::error::Error::source(&err).is_some());
    }
}
