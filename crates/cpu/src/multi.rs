//! True multi-core simulation: shared memory controller *and* shared
//! data (§4.1/§4.2.2).
//!
//! [`MultiCore`] runs N traces on N cores with private cache
//! hierarchies over one shared memory controller. Two effects couple
//! the cores:
//!
//! 1. **Persist interference.** The controller's write-pending queue is
//!    shared, so every core's `pcommit` must drain every core's pending
//!    writes.
//! 2. **Coherence.** When more than one core runs, every
//!    coherence-visible store (a non-speculative store draining from a
//!    core's store buffer, or a committed speculative store draining
//!    from its SSB) is snooped against every *other* core's BLT. A hit
//!    on a speculating core is an atomicity violation: that core rolls
//!    back to its oldest checkpoint and re-executes from the rolled-back
//!    trace position (§4.2.2), attributed to [`spp_core::BltStats`]
//!    `conflicts`.
//!
//! Cores are advanced lagging-core-first with an explicit
//! `(now, core_index)` tie-break, so requests reach the shared
//! controller in near-global time order (the controller clamps the
//! residual skew) and runs are deterministic regardless of construction
//! order. Snoops are delivered immediately after the laggard's step —
//! the earliest point at which the store is globally visible — which
//! preserves the same shared-controller time order.
//!
//! Pathological sharing can livelock: a core whose every re-execution
//! re-touches the contended block is rolled back again and again and its
//! own watchdog never fires (re-execution keeps retiring). The harness
//! therefore tracks consecutive rollbacks to the *same* trace position
//! per core and degrades to a typed [`SimError`]
//! ([`crate::SimErrorKind::ConflictStorm`]) with a diagnostic snapshot
//! once [`MultiCore::with_storm_bound`] is exceeded, never a hang.

use std::fmt;

use spp_mem::{shared_mem_ctrl, MemConfigError, MemorySystem};
use spp_pmem::{BlockId, Event};

use crate::config::CpuConfig;
use crate::error::{SimError, SimErrorKind};
use crate::pipeline::Pipeline;
use crate::stats::SimResult;

/// Default consecutive-no-progress-rollback budget per core before
/// [`MultiCore::try_run`] declares a conflict storm. Organic storms
/// self-damp (a rolled-back fence re-executes non-speculatively), so a
/// storm this deep indicates a sharing pattern the simulator cannot make
/// progress on.
pub const DEFAULT_STORM_BOUND: u64 = 64;

/// Why a [`MultiCore`] could not be constructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum MultiCoreError {
    /// No traces were supplied: there is nothing to simulate.
    NoCores,
    /// The shared memory configuration is structurally invalid.
    Mem(MemConfigError),
}

impl fmt::Display for MultiCoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MultiCoreError::NoCores => f.write_str("at least one core required"),
            MultiCoreError::Mem(e) => write!(f, "invalid memory configuration: {e}"),
        }
    }
}

impl std::error::Error for MultiCoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MultiCoreError::NoCores => None,
            MultiCoreError::Mem(e) => Some(e),
        }
    }
}

/// Per-core rollback-storm detector: counts consecutive rollbacks that
/// resume at the same trace position (i.e. re-execution made no forward
/// progress before being rolled back again).
#[derive(Debug, Clone, Copy, Default)]
struct StormDetector {
    last_resume: Option<usize>,
    consecutive: u64,
}

impl StormDetector {
    /// Records a rollback that resumed at `resume`; returns the number
    /// of consecutive no-progress rollbacks including this one.
    fn observe(&mut self, resume: usize) -> u64 {
        if self.last_resume == Some(resume) {
            self.consecutive += 1;
        } else {
            self.last_resume = Some(resume);
            self.consecutive = 1;
        }
        self.consecutive
    }
}

/// N cores with private caches sharing one memory controller, with
/// coherence-visible stores snooped against every other core's BLT.
#[derive(Debug)]
pub struct MultiCore<'t> {
    cores: Vec<Pipeline<'t>>,
    /// Snoop delivery is only enabled for true multi-core runs; a
    /// single core has nobody to conflict with and skips the plumbing.
    coherence: bool,
    storm_bound: u64,
}

impl<'t> MultiCore<'t> {
    /// Builds one pipeline per trace, all on `cfg`, with a shared
    /// memory controller — rejecting degenerate configurations (no
    /// cores, zero memory banks, zero WPQ entries) at construction time.
    ///
    /// Because construction validates the core set,
    /// [`MultiCore::try_run`] on a successfully built instance always
    /// returns at least one result.
    ///
    /// # Errors
    ///
    /// Returns [`MultiCoreError::NoCores`] for an empty trace set and
    /// [`MultiCoreError::Mem`] for an invalid memory configuration.
    pub fn try_new(traces: &[&'t [Event]], cfg: CpuConfig) -> Result<Self, MultiCoreError> {
        if traces.is_empty() {
            return Err(MultiCoreError::NoCores);
        }
        let mc = shared_mem_ctrl(cfg.mem).map_err(MultiCoreError::Mem)?;
        let coherence = traces.len() > 1;
        let cores = traces
            .iter()
            .map(|t| {
                let mut p = Pipeline::with_memory(
                    t,
                    cfg,
                    MemorySystem::with_shared_mc(cfg.mem, mc.clone()),
                );
                if coherence {
                    p.enable_snoop_emission();
                }
                p
            })
            .collect();
        Ok(MultiCore {
            cores,
            coherence,
            storm_bound: DEFAULT_STORM_BOUND,
        })
    }

    /// Overrides the conflict-storm budget: the number of consecutive
    /// rollbacks to the same trace position a core may take before
    /// [`MultiCore::try_run`] fails with
    /// [`SimErrorKind::ConflictStorm`]. A bound of 0 fails on the first
    /// rollback (useful for exercising the degraded path in tests).
    #[must_use]
    pub fn with_storm_bound(mut self, bound: u64) -> Self {
        self.storm_bound = bound;
        self
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Runs every core to completion, surfacing the first core
    /// simulation failure (watchdog, deadlock, conflict storm, broken
    /// invariant) as a typed error.
    ///
    /// # Errors
    ///
    /// Returns the [`SimError`] of the first failing core;
    /// [`SimErrorKind::ConflictStorm`] when a core exceeded the
    /// [`MultiCore::with_storm_bound`] budget of consecutive
    /// no-progress rollbacks.
    pub fn try_run(mut self) -> Result<Vec<SimResult>, SimError> {
        let mut storms = vec![StormDetector::default(); self.cores.len()];
        let mut inbox: Vec<BlockId> = Vec::new();
        loop {
            // Advance the laggard among unfinished cores; ties break on
            // the lowest core index so scheduling never depends on
            // incidental iterator order.
            let next = self
                .cores
                .iter()
                .enumerate()
                .filter(|(_, c)| !c.is_done())
                .min_by_key(|(i, c)| (c.now(), *i))
                .map(|(i, _)| i);
            let Some(i) = next else { break };
            self.cores[i].step()?;
            if self.coherence {
                self.cores[i].drain_snoops_into(&mut inbox);
                for &block in &inbox {
                    for (j, core) in self.cores.iter_mut().enumerate() {
                        // Deliver to finished cores too (a no-op for
                        // them): each core's snoop count then depends
                        // only on the trace set, not on completion
                        // order, keeping stats permutation-invariant.
                        if j == i {
                            continue;
                        }
                        if core.inject_coherence(block) {
                            let resume = core.trace_position();
                            if storms[j].observe(resume) > self.storm_bound {
                                return Err(SimError {
                                    kind: SimErrorKind::ConflictStorm {
                                        bound: self.storm_bound,
                                    },
                                    snapshot: Box::new(core.snapshot()),
                                });
                            }
                        }
                    }
                }
                inbox.clear();
            }
        }
        Ok(self.cores.iter().map(|c| c.result()).collect())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::reference::ReferencePipeline;
    use spp_pmem::PAddr;

    fn simulate(events: &[Event], cfg: &CpuConfig) -> SimResult {
        crate::Simulator::new(events).config(*cfg).run().unwrap()
    }

    fn barrier_trace(n: u64, salt: u64) -> Vec<Event> {
        let mut ev = Vec::new();
        for i in 0..n {
            let a = PAddr::new(4096 + (i + salt * 1000) * 64);
            ev.push(Event::Store {
                addr: a,
                size: 8,
                value: i,
            });
            ev.push(Event::Clwb { addr: a });
            ev.push(Event::Sfence);
            ev.push(Event::Pcommit);
            ev.push(Event::Sfence);
            ev.push(Event::Compute(150));
        }
        ev
    }

    #[test]
    fn single_core_multi_matches_solo() {
        let t = barrier_trace(30, 0);
        let solo = simulate(&t, &CpuConfig::baseline());
        let multi = MultiCore::try_new(&[&t], CpuConfig::baseline())
            .unwrap()
            .try_run()
            .unwrap();
        assert_eq!(multi.len(), 1);
        assert_eq!(multi[0].cpu.cycles, solo.cpu.cycles);
        assert_eq!(multi[0].cpu.committed_uops, solo.cpu.committed_uops);
    }

    #[test]
    fn every_core_commits_its_own_trace() {
        let traces: Vec<Vec<Event>> = (0..4).map(|i| barrier_trace(20 + i * 5, i)).collect();
        let refs: Vec<&[Event]> = traces.iter().map(|t| t.as_slice()).collect();
        let results = MultiCore::try_new(&refs, CpuConfig::with_sp())
            .unwrap()
            .try_run()
            .unwrap();
        assert_eq!(results.len(), 4);
        for (r, t) in results.iter().zip(&traces) {
            let expect: u64 = t.iter().map(|e| e.micro_ops()).sum();
            assert_eq!(r.cpu.committed_uops, expect);
        }
    }

    #[test]
    fn sharing_the_controller_slows_persist_heavy_cores() {
        // A bank-limited controller makes the interference visible at
        // this scale (the default 32 banks absorb four cores easily).
        let cfg = CpuConfig {
            mem: spp_mem::MemConfig {
                nvmm_banks: 2,
                ..spp_mem::MemConfig::paper()
            },
            ..CpuConfig::baseline()
        };
        let t = barrier_trace(40, 0);
        let solo = simulate(&t, &cfg).cpu.cycles;
        let traces: Vec<Vec<Event>> = (0..4).map(|i| barrier_trace(40, i)).collect();
        let refs: Vec<&[Event]> = traces.iter().map(|x| x.as_slice()).collect();
        let quad = MultiCore::try_new(&refs, cfg).unwrap().try_run().unwrap();
        let worst = quad.iter().map(|r| r.cpu.cycles).max().unwrap();
        assert!(
            worst > solo,
            "4 cores' pcommits must contend at the shared WPQ (worst {worst} vs solo {solo})"
        );
    }

    #[test]
    fn sp_helps_under_contention_too() {
        let traces: Vec<Vec<Event>> = (0..2).map(|i| barrier_trace(40, i)).collect();
        let refs: Vec<&[Event]> = traces.iter().map(|x| x.as_slice()).collect();
        let base: u64 = MultiCore::try_new(&refs, CpuConfig::baseline())
            .unwrap()
            .try_run()
            .unwrap()
            .iter()
            .map(|r| r.cpu.cycles)
            .max()
            .unwrap();
        let sp: u64 = MultiCore::try_new(&refs, CpuConfig::with_sp())
            .unwrap()
            .try_run()
            .unwrap()
            .iter()
            .map(|r| r.cpu.cycles)
            .max()
            .unwrap();
        assert!(
            sp <= base,
            "SP must not lose under contention ({sp} vs {base})"
        );
    }

    #[test]
    fn laggard_tie_break_is_permutation_invariant() {
        // The `(now, core_index)` tie-break makes scheduling a pure
        // function of the per-core traces: constructing the same cores
        // in a different order must produce identical per-trace results.
        let cfg = CpuConfig {
            mem: spp_mem::MemConfig {
                nvmm_banks: 2,
                ..spp_mem::MemConfig::paper()
            },
            ..CpuConfig::with_sp()
        };
        let traces: Vec<Vec<Event>> = (0..3).map(|i| barrier_trace(25 + i * 3, i)).collect();
        let fwd: Vec<&[Event]> = traces.iter().map(|t| t.as_slice()).collect();
        let perm: Vec<&[Event]> = [2usize, 0, 1].iter().map(|&i| fwd[i]).collect();
        let fwd_results = MultiCore::try_new(&fwd, cfg).unwrap().try_run().unwrap();
        let perm_results = MultiCore::try_new(&perm, cfg).unwrap().try_run().unwrap();
        for (k, &src) in [2usize, 0, 1].iter().enumerate() {
            assert_eq!(
                perm_results[k], fwd_results[src],
                "trace {src} diverged when constructed at position {k}"
            );
        }
    }

    // ---- coherence: conflicts, rollback, and storms ---------------------

    /// Shared block both coherence tests fight over.
    fn shared_addr() -> PAddr {
        PAddr::new(1 << 21)
    }

    /// The victim speculates past a persist barrier and then touches the
    /// shared block speculatively, staying in the speculative window
    /// long enough for the attacker's store to land.
    fn victim_trace() -> Vec<Event> {
        let a = PAddr::new(4096);
        vec![
            Event::Store {
                addr: a,
                size: 8,
                value: 1,
            },
            Event::Clwb { addr: a },
            Event::Sfence,
            Event::Pcommit,
            Event::Sfence, // blocks on the pcommit ack -> speculation begins
            Event::Store {
                addr: shared_addr(),
                size: 8,
                value: 2,
            },
            Event::Compute(4000),
        ]
    }

    /// The attacker performs a plain (never-speculative) store to the
    /// shared block after a delay that lands inside the victim's
    /// speculative window.
    fn attacker_trace(delay: u32) -> Vec<Event> {
        vec![
            Event::Compute(delay),
            Event::Store {
                addr: shared_addr(),
                size: 8,
                value: 3,
            },
            Event::Compute(200),
        ]
    }

    #[test]
    fn blt_conflict_rolls_back_exactly_once_end_to_end() {
        // Two cores share one block; the victim is speculating when the
        // attacker's store becomes coherence-visible. Exactly one
        // rollback, and the victim's architectural state (committed
        // work) is identical to a conflict-free serial run.
        let victim = victim_trace();
        let attacker = attacker_trace(300);
        let results = MultiCore::try_new(&[&victim, &attacker], CpuConfig::with_sp())
            .unwrap()
            .try_run()
            .unwrap();
        let v = &results[0];
        let a = &results[1];
        assert_eq!(v.cpu.rollbacks, 1, "exactly one rollback on the victim");
        assert_eq!(v.blt.conflicts, 1);
        assert!(v.blt.clears >= 1, "the rollback flash-clears the BLT");
        assert_eq!(a.cpu.rollbacks, 0, "the attacker never speculates");

        // Architectural state must match a conflict-free serial run of
        // the same trace (re-execution repairs everything).
        let serial = simulate(&victim, &CpuConfig::with_sp());
        assert_eq!(v.cpu.committed_uops, serial.cpu.committed_uops);
        assert_eq!(
            (
                v.cpu.loads,
                v.cpu.stores,
                v.cpu.flushes,
                v.cpu.pcommits,
                v.cpu.fences
            ),
            (
                serial.cpu.loads,
                serial.cpu.stores,
                serial.cpu.flushes,
                serial.cpu.pcommits,
                serial.cpu.fences
            )
        );
        assert!(v.cpu.squashed_uops > 0, "the rollback squashed work");
    }

    #[test]
    fn disjoint_cores_snoop_but_never_conflict() {
        // Coherence is wired (snoops flow) but address-disjoint traces
        // must never hit a BLT.
        let traces: Vec<Vec<Event>> = (0..2).map(|i| barrier_trace(20, i)).collect();
        let refs: Vec<&[Event]> = traces.iter().map(|t| t.as_slice()).collect();
        let results = MultiCore::try_new(&refs, CpuConfig::with_sp())
            .unwrap()
            .try_run()
            .unwrap();
        for r in &results {
            assert!(r.blt.snoops > 0, "coherence traffic must reach the BLT");
            assert_eq!(r.blt.conflicts, 0);
            assert_eq!(r.cpu.rollbacks, 0);
        }
    }

    #[test]
    fn conflict_storm_degrades_to_typed_error() {
        // Organic storms self-damp (the re-executed fence retires
        // without re-speculating), so force the detector with a zero
        // budget: the very first rollback must surface as a typed
        // ConflictStorm with a diagnostic snapshot — never a hang.
        let victim = victim_trace();
        let attacker = attacker_trace(300);
        let err = MultiCore::try_new(&[&victim, &attacker], CpuConfig::with_sp())
            .unwrap()
            .with_storm_bound(0)
            .try_run()
            .unwrap_err();
        assert!(matches!(err.kind, SimErrorKind::ConflictStorm { bound: 0 }));
        let msg = err.to_string();
        assert!(msg.contains("conflict storm"), "{msg}");
        assert!(err.to_json().contains("\"kind\":\"conflict_storm:0\""));
    }

    #[test]
    fn multicore_matches_reference_on_disjoint_legs() {
        // Cycle-equivalence of the event-driven multi-core composition
        // against a hand-rolled laggard-first loop of the cycle-accurate
        // reference stepper, on address-disjoint (non-sharing) traces.
        let traces: Vec<Vec<Event>> = (0..2).map(|i| barrier_trace(15, i)).collect();
        let refs: Vec<&[Event]> = traces.iter().map(|t| t.as_slice()).collect();
        for cfg in [CpuConfig::baseline(), CpuConfig::with_sp()] {
            let fast = MultiCore::try_new(&refs, cfg).unwrap().try_run().unwrap();

            let mc = shared_mem_ctrl(cfg.mem).unwrap();
            let mut slow: Vec<ReferencePipeline> = refs
                .iter()
                .map(|t| {
                    ReferencePipeline::with_memory(
                        t,
                        cfg,
                        MemorySystem::with_shared_mc(cfg.mem, mc.clone()),
                    )
                })
                .collect();
            loop {
                let next = slow
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| !c.is_done())
                    .min_by_key(|(i, c)| (c.now(), *i))
                    .map(|(i, _)| i);
                let Some(i) = next else { break };
                slow[i].step().unwrap();
            }
            for (f, s) in fast.iter().zip(slow.iter()) {
                assert_eq!(f.cpu.cycles, s.result().cpu.cycles);
                assert_eq!(f.cpu.committed_uops, s.result().cpu.committed_uops);
            }
        }
    }

    #[test]
    fn try_new_reports_empty_core_set() {
        let err = MultiCore::try_new(&[], CpuConfig::baseline()).unwrap_err();
        assert_eq!(err, MultiCoreError::NoCores);
        assert_eq!(err.to_string(), "at least one core required");
    }

    #[test]
    fn try_new_reports_invalid_memory_config() {
        let cfg = CpuConfig {
            mem: spp_mem::MemConfig {
                nvmm_banks: 0,
                ..spp_mem::MemConfig::paper()
            },
            ..CpuConfig::baseline()
        };
        let t = barrier_trace(1, 0);
        let err = MultiCore::try_new(&[&t], cfg).unwrap_err();
        assert_eq!(err, MultiCoreError::Mem(spp_mem::MemConfigError::ZeroBanks));
        assert!(err.to_string().contains("nvmm_banks"));
        assert!(std::error::Error::source(&err).is_some());
    }
}
