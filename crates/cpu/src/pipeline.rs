//! The trace-driven out-of-order pipeline with speculative persistence.
//!
//! A four-wide core (Table 2): fetch queue → ROB/LSQ → out-of-order
//! issue → in-order retirement. All persistence semantics live at
//! retirement:
//!
//! * stores retire into a post-retirement store buffer that drains to
//!   the L1D;
//! * `clwb`/`clflushopt` post a writeback and record its
//!   global-visibility time; `pcommit` posts a WPQ flush and records its
//!   acknowledgement time;
//! * `sfence`/`mfence` retire only once the store buffer is empty and
//!   every posted persist operation is globally visible — the pipeline
//!   stall the paper measures.
//!
//! With SP enabled, a fence blocked solely on pcommit acknowledgements
//! takes a checkpoint and retires speculatively (§4): younger stores go
//! to the SSB (bloom-filter indexed, BLT-tracked), in-shadow PMEM
//! instructions are delayed into the SSB, `sfence-pcommit-sfence`
//! sequences consume one checkpoint and one combined SSB opcode, and
//! epochs commit oldest-first as their pcommits acknowledge.

use std::collections::VecDeque;

use spp_core::{BloomFilter, Blt, EpochManager, Ssb, SsbEntry, SsbOp};
use spp_mem::{AccessKind, Cycle, MemorySystem};
use spp_pmem::{BlockId, Event, PAddr};

use crate::config::{CpuConfig, SpConfig};
use crate::stats::{CpuStats, SimResult};
use crate::uop::{TraceCursor, Uop, UopKind};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EState {
    /// Not yet issued.
    Waiting,
    /// Executing; completes at the cycle.
    Exec(Cycle),
    /// Complete (or retire-time semantics).
    Ready,
}

#[derive(Debug, Clone, Copy)]
struct RobEntry {
    uop: Uop,
    seq: u64,
    state: EState,
    /// For dependent loads: the seq of the previous load in program
    /// order (pointer chasing).
    prev_load: Option<u64>,
}

impl RobEntry {
    fn complete(&self, now: Cycle) -> bool {
        match self.state {
            EState::Ready => true,
            EState::Exec(t) => t <= now,
            EState::Waiting => false,
        }
    }
}

/// Commit gate of one speculative epoch (§4.2.1).
#[derive(Debug, Clone, Copy)]
struct Gate {
    /// Epoch this gate guards.
    epoch: u64,
    /// Absolute cycle the epoch's entry obligation completes; `None`
    /// until the predecessor's drained `sfence-pcommit-sfence` issues
    /// its pcommit.
    ready_at: Option<Cycle>,
    /// Additionally require all older SSB entries drained and their
    /// writebacks visible.
    needs_prior_drain: bool,
}

#[derive(Debug)]
struct SpState {
    cfg: SpConfig,
    ssb: Ssb,
    bloom: BloomFilter,
    bloom_dirty: bool,
    blt: Blt,
    epochs: EpochManager,
    gates: VecDeque<Gate>,
    /// Highest committed epoch id; entries tagged at or below it drain.
    committed_frontier: Option<u64>,
    drain_busy: Cycle,
    /// Max global-visibility time of flushes drained from the SSB.
    drain_visible_frontier: Cycle,
    /// Is the core retiring speculatively?
    speculating: bool,
    /// Per-live-epoch retired micro-op counts (squash accounting).
    retired_per_epoch: VecDeque<(u64, u64)>,
}

impl SpState {
    fn new(cfg: SpConfig) -> Self {
        SpState {
            ssb: Ssb::new(cfg.ssb),
            bloom: BloomFilter::with_bytes(cfg.bloom_bytes),
            bloom_dirty: false,
            blt: Blt::new(),
            epochs: EpochManager::new(cfg.checkpoints),
            gates: VecDeque::new(),
            committed_frontier: None,
            drain_busy: 0,
            drain_visible_frontier: 0,
            speculating: false,
            retired_per_epoch: VecDeque::new(),
            cfg,
        }
    }

    fn frontier_committed(&self, epoch: u64) -> bool {
        self.committed_frontier.is_some_and(|f| epoch <= f)
    }
}

/// The pipeline simulator. Construct with [`Pipeline::new`], drive with
/// [`run`](Pipeline::run) (or [`step`](Pipeline::step) /
/// [`inject_coherence`](Pipeline::inject_coherence) for fine-grained
/// tests), then read [`result`](Pipeline::result).
#[derive(Debug)]
pub struct Pipeline<'t> {
    cfg: CpuConfig,
    cursor: TraceCursor<'t>,
    mem: MemorySystem,
    now: Cycle,
    fetchq: VecDeque<Uop>,
    rob: VecDeque<RobEntry>,
    seq_base: u64,
    next_seq: u64,
    lsq_used: usize,
    last_load_seq: Option<u64>,
    store_buffer: VecDeque<BlockId>,
    sb_busy: Cycle,
    pending_flushes: Vec<Cycle>,
    pending_pcommits: Vec<Cycle>,
    sp: Option<SpState>,
    stats: CpuStats,
}

impl<'t> Pipeline<'t> {
    /// Builds a pipeline over a recorded event trace with its own
    /// private memory system.
    pub fn new(events: &'t [Event], cfg: CpuConfig) -> Self {
        Self::with_memory(events, cfg, MemorySystem::new(cfg.mem))
    }

    /// Builds a pipeline over an explicitly constructed memory system
    /// (e.g. one sharing its memory controller with other cores — see
    /// [`crate::MultiCore`]).
    pub fn with_memory(events: &'t [Event], cfg: CpuConfig, mem: MemorySystem) -> Self {
        Pipeline {
            cursor: TraceCursor::new(events),
            mem,
            now: 0,
            fetchq: VecDeque::with_capacity(cfg.fetch_queue),
            rob: VecDeque::with_capacity(cfg.rob_entries),
            seq_base: 0,
            next_seq: 0,
            lsq_used: 0,
            last_load_seq: None,
            store_buffer: VecDeque::with_capacity(cfg.store_buffer),
            sb_busy: 0,
            pending_flushes: Vec::new(),
            pending_pcommits: Vec::new(),
            sp: cfg.sp.map(SpState::new),
            stats: CpuStats::default(),
            cfg,
        }
    }

    /// Current simulated cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Has every micro-op retired and every buffer drained?
    pub fn is_done(&self) -> bool {
        self.cursor.is_done()
            && self.fetchq.is_empty()
            && self.rob.is_empty()
            && self.store_buffer.is_empty()
            && self
                .sp
                .as_ref()
                .is_none_or(|sp| sp.ssb.is_empty() && sp.epochs.is_empty() && !sp.speculating)
    }

    /// Runs to completion and returns the results.
    pub fn run(mut self) -> SimResult {
        while !self.is_done() {
            self.step();
        }
        self.result()
    }

    /// Advances one cycle (or skips idle time to the next event).
    pub fn step(&mut self) {
        let mut progressed = false;
        progressed |= self.commit_drain();
        let retire_block = self.retire();
        progressed |= retire_block.progressed;
        progressed |= self.drain_store_buffer();
        progressed |= self.issue();
        let dispatched = self.dispatch();
        progressed |= dispatched > 0;
        progressed |= self.fetch();

        let fetch_stalled = !self.fetchq.is_empty() && dispatched == 0;
        if fetch_stalled {
            self.stats.fetch_stall_cycles += 1;
        }

        if progressed || self.is_done() {
            self.now += 1;
        } else {
            let target = self.next_event_time();
            debug_assert!(
                target > self.now,
                "no-progress cycle must have a future event"
            );
            let skipped = target - self.now - 1;
            if fetch_stalled {
                self.stats.fetch_stall_cycles += skipped;
            }
            if retire_block.fence {
                self.stats.fence_stall_cycles += skipped;
            }
            if retire_block.ssb_full {
                self.stats.ssb_full_stall_cycles += skipped;
            }
            if retire_block.checkpoint {
                self.stats.checkpoint_stall_cycles += skipped;
            }
            self.now = target;
        }
        self.stats.cycles = self.now;
    }

    /// Assembles the final statistics.
    pub fn result(&self) -> SimResult {
        let mut r = SimResult {
            cpu: self.stats,
            mem: self.mem.stats(),
            mc: self.mem.mc_stats(),
            ..SimResult::default()
        };
        r.cpu.cycles = self.now;
        if let Some(sp) = &self.sp {
            r.ssb = sp.ssb.stats();
            r.bloom = sp.bloom.stats();
            r.checkpoints = sp.epochs.checkpoint_stats();
            r.blt = sp.blt.stats();
            let (epochs, rollbacks) = sp.epochs.counters();
            r.cpu.epochs = epochs;
            r.cpu.rollbacks = rollbacks;
        }
        r
    }

    // ---- external coherence (tests / multicore harnesses) -------------

    /// Delivers an external coherence request for `block`. Returns
    /// `true` if it conflicted with speculative state and triggered a
    /// rollback to the oldest checkpoint.
    pub fn inject_coherence(&mut self, block: BlockId) -> bool {
        let Some(sp) = &mut self.sp else { return false };
        if !sp.epochs.speculating() {
            return false;
        }
        if !sp.blt.snoop(block) {
            return false;
        }
        // Rollback: squash everything younger than the oldest checkpoint.
        let oldest_epoch = sp.epochs.oldest().expect("speculating").id;
        let resume = sp.epochs.rollback().expect("speculating");
        sp.ssb.flush_from(oldest_epoch);
        sp.gates.clear();
        sp.blt.clear();
        sp.speculating = false;
        let squashed: u64 = sp.retired_per_epoch.iter().map(|&(_, n)| n).sum();
        sp.retired_per_epoch.clear();
        self.stats.squashed_uops += squashed;
        self.stats.committed_uops = self.stats.committed_uops.saturating_sub(squashed);
        self.stats.rollbacks += 1;
        self.fetchq.clear();
        self.rob.clear();
        self.seq_base = self.next_seq;
        self.lsq_used = 0;
        self.last_load_seq = None;
        self.cursor.set_position(resume);
        true
    }

    // ---- fetch / dispatch ---------------------------------------------

    fn fetch(&mut self) -> bool {
        let mut any = false;
        for _ in 0..self.cfg.width {
            if self.fetchq.len() >= self.cfg.fetch_queue {
                break;
            }
            match self.cursor.next_uop() {
                Some(u) => {
                    self.fetchq.push_back(u);
                    any = true;
                }
                None => break,
            }
        }
        any
    }

    fn dispatch(&mut self) -> usize {
        let mut n = 0;
        while n < self.cfg.width {
            let Some(&uop) = self.fetchq.front() else {
                break;
            };
            if self.rob.len() >= self.cfg.rob_entries {
                break;
            }
            if uop.kind.is_mem() && self.lsq_used >= self.cfg.lsq_entries {
                break;
            }
            self.fetchq.pop_front();
            let seq = self.next_seq;
            self.next_seq += 1;
            // Dependent loads chain behind the previous *dependent* load
            // (the pointer chain); independent field reads in between do
            // not break the chain.
            let is_dep = matches!(uop.kind, UopKind::Load { dep: true, .. });
            let prev_load = if is_dep { self.last_load_seq } else { None };
            if is_dep {
                self.last_load_seq = Some(seq);
            }
            if uop.kind.is_mem() {
                self.lsq_used += 1;
            }
            let state = match uop.kind {
                UopKind::Compute | UopKind::Load { .. } | UopKind::Store { .. } => EState::Waiting,
                _ => EState::Ready,
            };
            self.rob.push_back(RobEntry {
                uop,
                seq,
                state,
                prev_load,
            });
            n += 1;
        }
        n
    }

    // ---- issue ----------------------------------------------------------

    fn issue(&mut self) -> bool {
        let mut issued = 0;
        let window = self.cfg.issue_queue.min(self.rob.len());
        for i in 0..window {
            if issued >= self.cfg.width {
                break;
            }
            if self.rob[i].state != EState::Waiting {
                continue;
            }
            match self.rob[i].uop.kind {
                UopKind::Compute | UopKind::Store { .. } => {
                    self.rob[i].state = EState::Exec(self.now + 1);
                    issued += 1;
                }
                UopKind::Load { addr, dep } => {
                    if dep {
                        if let Some(prev) = self.rob[i].prev_load {
                            if prev >= self.seq_base {
                                let idx = (prev - self.seq_base) as usize;
                                if !self.rob[idx].complete(self.now) {
                                    continue;
                                }
                            }
                        }
                    }
                    // Store-to-load forwarding from older, unretired
                    // stores in the window.
                    let forwarded = self
                        .rob
                        .iter()
                        .take(i)
                        .any(|e| matches!(e.uop.kind, UopKind::Store { addr: a } if a == addr));
                    let done = if forwarded {
                        self.stats.lsq_forwards += 1;
                        self.now + 1
                    } else {
                        self.load_completion(addr)
                    };
                    self.rob[i].state = EState::Exec(done);
                    issued += 1;
                }
                _ => {}
            }
        }
        issued > 0
    }

    /// Computes a load's completion: bloom + SSB forwarding path when
    /// speculative state may be buffered, cache hierarchy otherwise.
    fn load_completion(&mut self, addr: PAddr) -> Cycle {
        let now = self.now;
        if let Some(sp) = &mut self.sp {
            if sp.speculating {
                sp.blt.record(addr.block());
            }
            if !sp.ssb.is_empty() && sp.bloom.query(addr) {
                let after_cam = now + sp.cfg.ssb.latency;
                if sp.ssb.forwards(addr) {
                    self.stats.ssb_forwards += 1;
                    return after_cam;
                }
                sp.bloom.record_false_positive();
                let (done, _) = self.mem.access(after_cam, addr.block(), AccessKind::Load);
                return done;
            }
        }
        let (done, _) = self.mem.access(now, addr.block(), AccessKind::Load);
        done
    }

    // ---- retire ----------------------------------------------------------

    fn note_spec_retired(&mut self, n: u64) {
        if let Some(sp) = &mut self.sp {
            if sp.speculating {
                if let Some(back) = sp.retired_per_epoch.back_mut() {
                    back.1 += n;
                }
            }
        }
    }

    fn pop_retired(&mut self, class: impl Fn(&mut CpuStats)) {
        let e = self.rob.pop_front().expect("retiring from empty ROB");
        self.seq_base = e.seq + 1;
        if e.uop.kind.is_mem() {
            self.lsq_used -= 1;
        }
        self.stats.committed_uops += 1;
        class(&mut self.stats);
        self.note_spec_retired(1);
    }

    fn pcommit_outstanding(&self) -> bool {
        self.pending_pcommits.iter().any(|&t| t > self.now)
    }

    fn retire(&mut self) -> RetireBlock {
        let mut block = RetireBlock::default();
        let mut retired = 0;
        while retired < self.cfg.width {
            let Some(head) = self.rob.front().copied() else {
                break;
            };
            if !head.complete(self.now) {
                break;
            }
            let speculating = self.sp.as_ref().is_some_and(|s| s.speculating);
            match head.uop.kind {
                UopKind::Compute => {
                    self.pop_retired(|_| {});
                }
                UopKind::Load { .. } => {
                    self.pop_retired(|s| s.loads += 1);
                }
                UopKind::Store { addr } => {
                    if !self.retire_store(addr, &mut block) {
                        break;
                    }
                }
                UopKind::Clwb { block: b } | UopKind::ClflushOpt { block: b } => {
                    let invalidate = matches!(head.uop.kind, UopKind::ClflushOpt { .. });
                    // clwb is ordered behind older stores to the same
                    // line: wait for the store buffer to drain.
                    if !self.store_buffer.is_empty() {
                        break;
                    }
                    if speculating || self.ssb_nonempty() {
                        let op = if invalidate {
                            SsbOp::ClflushOpt { block: b }
                        } else {
                            SsbOp::Clwb { block: b }
                        };
                        if !self.push_ssb(op) {
                            block.ssb_full = true;
                            self.stats.ssb_full_stall_cycles += 1;
                            break;
                        }
                    } else {
                        let f = self.mem.flush(self.now, b, invalidate);
                        self.pending_flushes.push(f.visible_at);
                    }
                    if self.pcommit_outstanding() {
                        self.stats.stores_while_pcommit += 1;
                    }
                    self.pop_retired(|s| s.flushes += 1);
                }
                UopKind::Clflush { block: b } => {
                    if !self.retire_clflush(b, speculating, &mut block) {
                        break;
                    }
                }
                UopKind::Pcommit => {
                    if speculating {
                        if !self.retire_spec_pcommit_pattern(&mut block) {
                            break;
                        }
                    } else if self.ssb_nonempty() {
                        if !self.push_ssb(SsbOp::Pcommit) {
                            block.ssb_full = true;
                            self.stats.ssb_full_stall_cycles += 1;
                            break;
                        }
                        self.pop_retired(|s| s.pcommits += 1);
                    } else {
                        let done = self.mem.pcommit(self.now);
                        let inflight = 1 + self
                            .pending_pcommits
                            .iter()
                            .filter(|&&t| t > self.now)
                            .count() as u64;
                        self.stats.max_inflight_pcommits =
                            self.stats.max_inflight_pcommits.max(inflight);
                        self.pending_pcommits.push(done);
                        self.pop_retired(|s| s.pcommits += 1);
                    }
                }
                UopKind::Sfence | UopKind::Mfence => {
                    if !self.retire_fence(speculating, &mut block) {
                        break;
                    }
                }
            }
            retired += 1;
        }
        block.progressed = retired > 0;
        block
    }

    fn ssb_nonempty(&self) -> bool {
        self.sp.as_ref().is_some_and(|s| !s.ssb.is_empty())
    }

    /// Pushes an op into the SSB tagged with the current tail epoch.
    fn push_ssb(&mut self, op: SsbOp) -> bool {
        let sp = self.sp.as_mut().expect("SSB push without SP");
        let epoch = if sp.speculating {
            sp.epochs.youngest().expect("speculating").id
        } else {
            // Post-exit tail: ordered behind the already-committed drain.
            sp.committed_frontier.unwrap_or(0)
        };
        if let SsbOp::Store { addr } = op {
            if sp.ssb.push(SsbEntry { op, epoch }).is_err() {
                return false;
            }
            sp.bloom.insert(addr);
            sp.bloom_dirty = true;
            if sp.speculating {
                sp.blt.record(addr.block());
            }
            true
        } else {
            sp.ssb.push(SsbEntry { op, epoch }).is_ok()
        }
    }

    fn retire_store(&mut self, addr: PAddr, block: &mut RetireBlock) -> bool {
        let speculating = self.sp.as_ref().is_some_and(|s| s.speculating);
        if speculating || self.ssb_nonempty() {
            if !self.push_ssb(SsbOp::Store { addr }) {
                block.ssb_full = true;
                self.stats.ssb_full_stall_cycles += 1;
                return false;
            }
        } else {
            if self.store_buffer.len() >= self.cfg.store_buffer {
                return false;
            }
            self.store_buffer.push_back(addr.block());
        }
        if self.pcommit_outstanding() {
            self.stats.stores_while_pcommit += 1;
        }
        self.pop_retired(|s| s.stores += 1);
        true
    }

    fn retire_clflush(&mut self, b: BlockId, speculating: bool, block: &mut RetireBlock) -> bool {
        if !self.store_buffer.is_empty() {
            return false;
        }
        if speculating || self.ssb_nonempty() {
            if !self.push_ssb(SsbOp::ClflushOpt { block: b }) {
                block.ssb_full = true;
                return false;
            }
            self.pop_retired(|s| s.flushes += 1);
            return true;
        }
        // Legacy clflush serializes: issue once, then hold retirement
        // until visible.
        match self.rob.front().expect("head").state {
            EState::Ready => {
                let f = self.mem.flush(self.now, b, true);
                self.rob.front_mut().expect("head").state = EState::Exec(f.visible_at);
                false
            }
            EState::Exec(t) if t <= self.now => {
                self.pop_retired(|s| s.flushes += 1);
                true
            }
            _ => false,
        }
    }

    /// Speculative-mode `pcommit` at the head: if followed by an
    /// `sfence` (and combining is on), consume both as the combined SSB
    /// opcode and open a child epoch at the trailing fence.
    fn retire_spec_pcommit_pattern(&mut self, block: &mut RetireBlock) -> bool {
        let combine = self.sp.as_ref().expect("sp").cfg.combine_barrier;
        let next_is_sfence = self.rob.len() >= 2 && matches!(self.rob[1].uop.kind, UopKind::Sfence);
        if combine && next_is_sfence {
            return self.consume_combined_barrier(0, block);
        }
        if combine && self.rob.len() < 2 && !(self.cursor.is_done() && self.fetchq.is_empty()) {
            // The sfence is probably right behind; wait for dispatch.
            return false;
        }
        // Bare in-shadow pcommit: delay it into the SSB.
        if !self.push_ssb(SsbOp::Pcommit) {
            block.ssb_full = true;
            self.stats.ssb_full_stall_cycles += 1;
            return false;
        }
        self.pop_retired(|s| s.pcommits += 1);
        true
    }

    /// Consumes `pcommit`(at head offset 0 or 1) + trailing `sfence`:
    /// pushes the combined opcode, opens a child epoch checkpointed at
    /// the trailing fence. `pcommit_at` is the ROB index of the pcommit.
    fn consume_combined_barrier(&mut self, pcommit_at: usize, block: &mut RetireBlock) -> bool {
        let fence_idx = pcommit_at + 1;
        debug_assert!(matches!(self.rob[pcommit_at].uop.kind, UopKind::Pcommit));
        debug_assert!(matches!(self.rob[fence_idx].uop.kind, UopKind::Sfence));
        let resume_idx = self.rob[fence_idx].uop.trace_idx;
        {
            let sp = self.sp.as_mut().expect("sp");
            if sp.ssb.free() < 1 {
                block.ssb_full = true;
                self.stats.ssb_full_stall_cycles += 1;
                return false;
            }
            if !sp.epochs.can_begin() {
                block.checkpoint = true;
                self.stats.checkpoint_stall_cycles += 1;
                return false;
            }
            let parent = sp.epochs.youngest().expect("speculating").id;
            sp.ssb
                .push(SsbEntry {
                    op: SsbOp::SfencePcommitSfence,
                    epoch: parent,
                })
                .expect("space checked");
            let child = sp
                .epochs
                .begin(resume_idx, self.now)
                .expect("checkpoint checked");
            sp.gates.push_back(Gate {
                epoch: child,
                ready_at: None,
                needs_prior_drain: false,
            });
            sp.retired_per_epoch.push_back((child, 0));
        }
        self.stats.epochs += 1;
        // Retire the consumed micro-ops (leading sfence if present,
        // pcommit, trailing sfence).
        for _ in 0..=fence_idx {
            let e = self.rob.pop_front().expect("pattern entries present");
            self.seq_base = e.seq + 1;
            self.stats.committed_uops += 1;
            match e.uop.kind {
                UopKind::Pcommit => self.stats.pcommits += 1,
                UopKind::Sfence => self.stats.fences += 1,
                _ => unreachable!("combined pattern holds only pcommit/sfence"),
            }
        }
        // Squash attribution: the child's checkpoint resumes at the
        // trailing sfence, so only that micro-op belongs to the child;
        // the leading sfence/pcommit precede the checkpoint and belong
        // to the parent epoch.
        if let Some(sp) = &mut self.sp {
            let n = sp.retired_per_epoch.len();
            debug_assert!(n >= 2, "combined barrier needs a parent epoch");
            if n >= 2 {
                sp.retired_per_epoch[n - 2].1 += fence_idx as u64;
            }
            if let Some(back) = sp.retired_per_epoch.back_mut() {
                back.1 += 1;
            }
        }
        true
    }

    fn retire_fence(&mut self, speculating: bool, block: &mut RetireBlock) -> bool {
        if speculating {
            // In-shadow fence: combined pattern or a bare child epoch.
            let combine = self.sp.as_ref().expect("sp").cfg.combine_barrier;
            let pat = combine
                && self.rob.len() >= 3
                && matches!(self.rob[0].uop.kind, UopKind::Sfence)
                && matches!(self.rob[1].uop.kind, UopKind::Pcommit)
                && matches!(self.rob[2].uop.kind, UopKind::Sfence);
            if pat {
                // Consume the leading sfence first, then the pair.
                let lead = self.rob.front().expect("head").seq;
                let _ = lead;
                // Reuse the combined path by treating [1],[2]; retire all
                // three in one go: temporarily handle leading fence.
                return self.consume_leading_then_combined(block);
            }
            if combine && self.rob.len() < 3 && !(self.cursor.is_done() && self.fetchq.is_empty()) {
                return false; // wait for the rest of the pattern
            }
            // Bare fence: new child epoch (no pending pcommit of its own).
            let resume_idx = self.rob.front().expect("head").uop.trace_idx;
            {
                let sp = self.sp.as_mut().expect("sp");
                if !sp.epochs.can_begin() {
                    block.checkpoint = true;
                    self.stats.checkpoint_stall_cycles += 1;
                    return false;
                }
                let child = sp.epochs.begin(resume_idx, self.now).expect("checked");
                sp.gates.push_back(Gate {
                    epoch: child,
                    ready_at: Some(self.now),
                    needs_prior_drain: true,
                });
                sp.retired_per_epoch.push_back((child, 0));
            }
            self.stats.epochs += 1;
            self.pop_retired(|s| s.fences += 1);
            return true;
        }

        // Non-speculative fence: wait for the store buffer and all
        // posted persist operations.
        if !self.store_buffer.is_empty() {
            block.fence = true;
            self.stats.fence_stall_cycles += 1;
            return false;
        }
        let now = self.now;
        self.pending_flushes.retain(|&t| t > now);
        self.pending_pcommits.retain(|&t| t > now);
        let flushes_pending = !self.pending_flushes.is_empty();
        let pcommits_pending = !self.pending_pcommits.is_empty();
        let drain_pending = self.ssb_nonempty()
            || self
                .sp
                .as_ref()
                .is_some_and(|s| s.drain_visible_frontier > now);
        if !flushes_pending && !pcommits_pending && !drain_pending {
            self.pop_retired(|s| s.fences += 1);
            return true;
        }
        // Blocked. Trigger speculation if enabled and the wait involves
        // pcommit acknowledgements or a pending SSB drain (§4.2.1); a
        // pure clwb-visibility wait is short and simply stalls.
        if self.sp.is_some() && (pcommits_pending || drain_pending) {
            let resume_idx = self.rob.front().expect("head").uop.trace_idx;
            let gate_time = self
                .pending_flushes
                .iter()
                .chain(self.pending_pcommits.iter())
                .copied()
                .max()
                .unwrap_or(now);
            let sp = self.sp.as_mut().expect("checked");
            if !sp.epochs.can_begin() {
                block.checkpoint = true;
                self.stats.checkpoint_stall_cycles += 1;
                return false;
            }
            let e0 = sp.epochs.begin(resume_idx, now).expect("checked");
            sp.gates.push_back(Gate {
                epoch: e0,
                ready_at: Some(gate_time),
                needs_prior_drain: drain_pending,
            });
            sp.retired_per_epoch.push_back((e0, 0));
            sp.speculating = true;
            self.stats.epochs += 1;
            self.pending_flushes.clear();
            self.pending_pcommits.clear();
            self.pop_retired(|s| s.fences += 1);
            return true;
        }
        block.fence = true;
        self.stats.fence_stall_cycles += 1;
        false
    }

    /// Head is `sfence` with `pcommit; sfence` behind (combined pattern
    /// including the leading fence): push the marker, open the child,
    /// retire all three.
    fn consume_leading_then_combined(&mut self, block: &mut RetireBlock) -> bool {
        // Check resources before consuming anything.
        {
            let sp = self.sp.as_ref().expect("sp");
            if sp.ssb.free() < 1 {
                block.ssb_full = true;
                self.stats.ssb_full_stall_cycles += 1;
                return false;
            }
            if !sp.epochs.can_begin() {
                block.checkpoint = true;
                self.stats.checkpoint_stall_cycles += 1;
                return false;
            }
        }
        self.consume_combined_barrier(1, block)
    }

    // ---- store buffer ----------------------------------------------------

    fn drain_store_buffer(&mut self) -> bool {
        let mut any = false;
        while !self.store_buffer.is_empty() && self.sb_busy <= self.now {
            let b = self.store_buffer.pop_front().expect("non-empty");
            // Posted write: state effects now, 1/cycle pacing.
            let _ = self.mem.access(self.now, b, AccessKind::Store);
            self.sb_busy = self.now + 1;
            any = true;
        }
        any
    }

    // ---- SP commit & drain -------------------------------------------------

    fn commit_drain(&mut self) -> bool {
        let now = self.now;
        let Some(sp) = &mut self.sp else { return false };
        let mut progressed = false;

        // Commit epochs whose gates pass, oldest first.
        while let Some(oldest) = sp.epochs.oldest() {
            let gate = sp.gates.front().expect("gate per epoch");
            debug_assert_eq!(gate.epoch, oldest.id);
            let Some(t) = gate.ready_at else { break };
            if t > now {
                break;
            }
            if gate.needs_prior_drain {
                let older_drained = sp.ssb.peek_front().is_none_or(|f| f.epoch >= oldest.id);
                if !older_drained || sp.drain_busy > now || sp.drain_visible_frontier > now {
                    break;
                }
            }
            sp.epochs.commit_oldest();
            sp.gates.pop_front();
            sp.retired_per_epoch.pop_front();
            sp.committed_frontier = Some(oldest.id);
            if sp.epochs.is_empty() {
                // Exiting speculation; the SSB drains in the background.
                sp.speculating = false;
                sp.blt.clear();
            }
            progressed = true;
        }

        // Drain committed entries from the SSB front.
        while sp.drain_busy <= now {
            let Some(front) = sp.ssb.peek_front() else {
                break;
            };
            if !sp.frontier_committed(front.epoch) {
                break;
            }
            let e = sp.ssb.pop_front().expect("peeked");
            let t = sp.drain_busy.max(now);
            match e.op {
                SsbOp::Store { addr } => {
                    let _ = self.mem.access(t, addr.block(), AccessKind::Store);
                    sp.drain_busy = t + 1;
                }
                SsbOp::Clwb { block } => {
                    let f = self.mem.flush(t, block, false);
                    sp.drain_visible_frontier = sp.drain_visible_frontier.max(f.visible_at);
                    sp.drain_busy = t + 1;
                }
                SsbOp::ClflushOpt { block } => {
                    let f = self.mem.flush(t, block, true);
                    sp.drain_visible_frontier = sp.drain_visible_frontier.max(f.visible_at);
                    sp.drain_busy = t + 1;
                }
                SsbOp::Pcommit => {
                    let _ = self.mem.pcommit(t);
                    sp.drain_busy = t + 1;
                }
                SsbOp::SfencePcommitSfence => {
                    // The leading fence orders the drained writebacks;
                    // then the pcommit issues and its ack gates the next
                    // epoch.
                    let issue = t.max(sp.drain_visible_frontier);
                    let done = self.mem.pcommit(issue);
                    let inflight =
                        1 + self.pending_pcommits.iter().filter(|&&pt| pt > now).count() as u64;
                    self.stats.max_inflight_pcommits =
                        self.stats.max_inflight_pcommits.max(inflight);
                    if let Some(g) = sp.gates.front_mut() {
                        if g.ready_at.is_none() {
                            g.ready_at = Some(done);
                        }
                    }
                    sp.drain_busy = issue + 1;
                }
            }
            progressed = true;
        }

        // Bloom filter resets on exiting speculative execution — once
        // the post-exit drain finishes, so no buffered store can lose
        // its filter bits (no false negatives). Stores that drained
        // before the reset leave stale bits behind: the false-positive
        // source the paper identifies in Fig. 14.
        if !sp.speculating && sp.ssb.is_empty() && sp.bloom_dirty {
            sp.bloom.reset();
            sp.bloom_dirty = false;
            progressed = true;
        }
        progressed
    }

    // ---- idle-time skipping ------------------------------------------------

    fn next_event_time(&self) -> Cycle {
        let mut t = Cycle::MAX;
        for e in &self.rob {
            if let EState::Exec(d) = e.state {
                if d > self.now {
                    t = t.min(d);
                }
            }
        }
        for &p in self
            .pending_flushes
            .iter()
            .chain(self.pending_pcommits.iter())
        {
            if p > self.now {
                t = t.min(p);
            }
        }
        if !self.store_buffer.is_empty() && self.sb_busy > self.now {
            t = t.min(self.sb_busy);
        }
        if let Some(sp) = &self.sp {
            for g in &sp.gates {
                if let Some(r) = g.ready_at {
                    if r > self.now {
                        t = t.min(r);
                    }
                }
            }
            if !sp.ssb.is_empty() && sp.drain_busy > self.now {
                t = t.min(sp.drain_busy);
            }
            if sp.drain_visible_frontier > self.now {
                t = t.min(sp.drain_visible_frontier);
            }
        }
        assert!(
            t != Cycle::MAX,
            "pipeline deadlock at cycle {}: rob={}, fetchq={}, sb={}, cursor_done={}",
            self.now,
            self.rob.len(),
            self.fetchq.len(),
            self.store_buffer.len(),
            self.cursor.is_done()
        );
        t
    }
}

/// Why retirement stopped this cycle (stall attribution).
#[derive(Debug, Default, Clone, Copy)]
struct RetireBlock {
    progressed: bool,
    fence: bool,
    ssb_full: bool,
    checkpoint: bool,
}

#[cfg(test)]
mod tests {
    //! Regression pin for the DESIGN §7 bloom-reset invariant: the
    //! filter resets only once the post-exit drain finishes, so a store
    //! still buffered in the SSB can never lose its filter bits (which
    //! would be a false negative — a missed store-to-load forward).

    use super::*;

    fn barrier_trace(n: u64) -> Vec<Event> {
        let mut ev = Vec::new();
        for i in 0..n {
            let a = PAddr::new(4096 + i * 64);
            ev.push(Event::Store {
                addr: a,
                size: 8,
                value: i,
            });
            ev.push(Event::Clwb { addr: a });
            ev.push(Event::Sfence);
            ev.push(Event::Pcommit);
            ev.push(Event::Sfence);
            // Several stores in the fence shadow keep the SSB occupied
            // across epoch boundaries, so the post-exit drain spans
            // multiple cycles (the window the invariant is about).
            for j in 0..4 {
                let b = PAddr::new(1 << 20 | (4096 + (i * 4 + j) * 64));
                ev.push(Event::Store {
                    addr: b,
                    size: 8,
                    value: i,
                });
            }
            ev.push(Event::Compute(40));
        }
        ev
    }

    /// Every store currently buffered in the SSB must still be
    /// bloom-positive; otherwise a load could skip the CAM search and
    /// miss a forward.
    fn assert_no_false_negatives(p: &Pipeline<'_>) {
        let sp = p.sp.as_ref().expect("SP enabled");
        for e in sp.ssb.iter() {
            if let SsbOp::Store { addr } = e.op {
                assert!(
                    sp.bloom.contains(addr),
                    "cycle {}: buffered SSB store {addr} lost its bloom bits",
                    p.now
                );
            }
        }
    }

    #[test]
    fn bloom_bits_survive_until_post_exit_drain_finishes() {
        let t = barrier_trace(40);
        let mut p = Pipeline::new(&t, CpuConfig::with_sp());
        let mut mid_drain_windows = 0u64;
        while !p.is_done() {
            p.step();
            assert_no_false_negatives(&p);
            let sp = p.sp.as_ref().expect("SP enabled");
            // The dangerous window: speculation has ended but entries
            // are still draining. A premature reset here is exactly
            // what the invariant forbids.
            if !sp.speculating && !sp.ssb.is_empty() {
                mid_drain_windows += 1;
                assert!(
                    sp.bloom_dirty,
                    "cycle {}: filter reset while {} SSB entries were still draining",
                    p.now,
                    sp.ssb.len()
                );
            }
        }
        assert!(
            mid_drain_windows > 0,
            "trace never exercised a post-exit drain window; the test is vacuous"
        );
        let sp = p.sp.as_ref().expect("SP enabled");
        assert!(sp.ssb.is_empty());
        assert!(
            !sp.bloom_dirty,
            "drained pipeline must end with a clean filter"
        );
        assert!(
            p.result().bloom.resets > 0,
            "speculation exits must actually reset the filter"
        );
    }

    #[test]
    fn rollback_keeps_surviving_entries_bloom_positive() {
        // A coherence-triggered rollback flushes the squashed epochs'
        // entries but spares committed, still-draining ones — and must
        // not reset the filter while any survivor is buffered.
        let t = barrier_trace(40);
        let mut p = Pipeline::new(&t, CpuConfig::with_sp());
        let mut rolled_back = false;
        for i in 0.. {
            if p.is_done() {
                break;
            }
            p.step();
            assert_no_false_negatives(&p);
            if i % 7 == 0 {
                // Snoop a block a speculative store may have touched.
                let addr = PAddr::new(1 << 20 | (4096 + (i / 7 % 40) * 64));
                if p.inject_coherence(addr.block()) {
                    rolled_back = true;
                    assert_no_false_negatives(&p);
                }
            }
        }
        assert!(rolled_back, "no rollback triggered; the test is vacuous");
    }
}
