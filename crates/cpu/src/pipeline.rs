//! The trace-driven out-of-order pipeline with speculative persistence.
//!
//! A four-wide core (Table 2): fetch queue → ROB/LSQ → out-of-order
//! issue → in-order retirement. All persistence semantics live at
//! retirement:
//!
//! * stores retire into a post-retirement store buffer that drains to
//!   the L1D;
//! * `clwb`/`clflushopt` post a writeback and record its
//!   global-visibility time; `pcommit` posts a WPQ flush and records its
//!   acknowledgement time;
//! * `sfence`/`mfence` retire only once the store buffer is empty and
//!   every posted persist operation is globally visible — the pipeline
//!   stall the paper measures.
//!
//! With SP enabled, a fence blocked solely on pcommit acknowledgements
//! takes a checkpoint and retires speculatively (§4): younger stores go
//! to the SSB (bloom-filter indexed, BLT-tracked), in-shadow PMEM
//! instructions are delayed into the SSB, `sfence-pcommit-sfence`
//! sequences consume one checkpoint and one combined SSB opcode, and
//! epochs commit oldest-first as their pcommits acknowledge.

use std::collections::VecDeque;

use spp_core::{BloomFilter, Blt, EpochManager, Ssb, SsbEntry, SsbOp};
use spp_mem::{AccessKind, Cycle, Fault, FaultSite, FaultState, MemorySystem, PIPE_STREAM};
use spp_obs::{ProbeEvent, ProbeHandle, StallCause};
use spp_pmem::{BlockId, Event, PAddr};

use crate::config::{CpuConfig, SpConfig};
use crate::error::{DiagnosticSnapshot, SimError, SimErrorKind};
use crate::stats::{CpuStats, EpochRetired, SimResult};
use crate::uop::{TraceCursor, Uop, UopKind};
use crate::vislog::{VisEvent, VisOp};

/// Internal step failure: lightweight so it can be raised inside
/// borrow-heavy regions; [`Pipeline::step`] attaches the diagnostic
/// snapshot when converting it into a [`SimError`].
#[derive(Debug, Clone, Copy)]
enum StepErr {
    /// An internal invariant broke.
    Broken(&'static str),
    /// No progress and no scheduled future event.
    Wedged,
    /// The forward-progress watchdog fired at this bound.
    Watchdog(Cycle),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EState {
    /// Not yet issued.
    Waiting,
    /// Executing; completes at the cycle.
    Exec(Cycle),
    /// Complete (or retire-time semantics).
    Ready,
}

#[derive(Debug, Clone, Copy)]
struct RobEntry {
    uop: Uop,
    seq: u64,
    state: EState,
    /// For dependent loads: the seq of the previous load in program
    /// order (pointer chasing).
    prev_load: Option<u64>,
}

impl RobEntry {
    fn complete(&self, now: Cycle) -> bool {
        match self.state {
            EState::Ready => true,
            EState::Exec(t) => t <= now,
            EState::Waiting => false,
        }
    }
}

/// A set of outstanding completion times (posted writeback visibility
/// or pcommit acknowledgements) with amortized pruning.
///
/// The reference stepper keeps these as bare `Vec<Cycle>`s pruned only
/// at fence retirement; traces that issue pcommits without fences (the
/// `logp` variants) grow them without bound, and every
/// `pcommit_outstanding`/`next_event_time` query re-scans the full
/// history — quadratic in trace length. Entries with `t <= now` can
/// never influence a query again (every query filters on `t > now` and
/// `now` is monotone), so dropping them is invisible to timing;
/// [`prune`](PendingOps::prune) does so in place, only once `now`
/// reaches the earliest live entry, reusing the same backing storage
/// for the whole run.
#[derive(Debug)]
struct PendingOps {
    times: Vec<Cycle>,
    /// Earliest entry (`Cycle::MAX` when empty) — the prune trigger.
    earliest: Cycle,
}

impl PendingOps {
    fn new() -> Self {
        PendingOps {
            times: Vec::with_capacity(16),
            earliest: Cycle::MAX,
        }
    }

    fn push(&mut self, t: Cycle) {
        self.earliest = self.earliest.min(t);
        self.times.push(t);
    }

    /// Drops entries that completed at or before `now`.
    fn prune(&mut self, now: Cycle) {
        if now < self.earliest {
            return;
        }
        self.times.retain(|&t| t > now);
        self.earliest = self.times.iter().copied().min().unwrap_or(Cycle::MAX);
    }

    /// Is any operation still incomplete at `now`?
    fn outstanding(&self, now: Cycle) -> bool {
        self.times.iter().any(|&t| t > now)
    }

    /// Operations still incomplete at `now`.
    fn outstanding_count(&self, now: Cycle) -> usize {
        self.times.iter().filter(|&&t| t > now).count()
    }

    /// Latest outstanding completion, if any.
    fn last_outstanding(&self, now: Cycle) -> Option<Cycle> {
        self.times.iter().copied().filter(|&t| t > now).max()
    }

    /// Earliest outstanding completion, if any (the event reporter).
    fn next_after(&self, now: Cycle) -> Option<Cycle> {
        self.times.iter().copied().filter(|&t| t > now).min()
    }

    fn clear(&mut self) {
        self.times.clear();
        self.earliest = Cycle::MAX;
    }
}

/// Commit gate of one speculative epoch (§4.2.1).
#[derive(Debug, Clone, Copy)]
struct Gate {
    /// Epoch this gate guards.
    epoch: u64,
    /// Absolute cycle the epoch's entry obligation completes; `None`
    /// until the predecessor's drained `sfence-pcommit-sfence` issues
    /// its pcommit.
    ready_at: Option<Cycle>,
    /// Additionally require all older SSB entries drained and their
    /// writebacks visible.
    needs_prior_drain: bool,
}

#[derive(Debug)]
struct SpState {
    cfg: SpConfig,
    ssb: Ssb,
    bloom: BloomFilter,
    bloom_dirty: bool,
    blt: Blt,
    epochs: EpochManager,
    gates: VecDeque<Gate>,
    /// Highest committed epoch id; entries tagged at or below it drain.
    committed_frontier: Option<u64>,
    drain_busy: Cycle,
    /// Max global-visibility time of flushes drained from the SSB.
    drain_visible_frontier: Cycle,
    /// Is the core retiring speculatively?
    speculating: bool,
    /// Per-live-epoch retired micro-op breakdowns (squash accounting).
    retired_per_epoch: VecDeque<(u64, EpochRetired)>,
}

impl SpState {
    fn new(cfg: SpConfig) -> Self {
        SpState {
            ssb: Ssb::new(cfg.ssb),
            bloom: BloomFilter::with_bytes(cfg.bloom_bytes),
            bloom_dirty: false,
            blt: Blt::new(),
            epochs: EpochManager::new(cfg.checkpoints),
            gates: VecDeque::new(),
            committed_frontier: None,
            drain_busy: 0,
            drain_visible_frontier: 0,
            speculating: false,
            retired_per_epoch: VecDeque::new(),
            cfg,
        }
    }

    fn frontier_committed(&self, epoch: u64) -> bool {
        self.committed_frontier.is_some_and(|f| epoch <= f)
    }
}

/// The pipeline simulator. Construct with [`Pipeline::new`], drive with
/// [`run`](Pipeline::run) (or [`step`](Pipeline::step) /
/// [`inject_coherence`](Pipeline::inject_coherence) for fine-grained
/// tests), then read [`result`](Pipeline::result).
#[derive(Debug)]
pub struct Pipeline<'t> {
    cfg: CpuConfig,
    cursor: TraceCursor<'t>,
    mem: MemorySystem,
    now: Cycle,
    fetchq: VecDeque<Uop>,
    rob: VecDeque<RobEntry>,
    seq_base: u64,
    next_seq: u64,
    lsq_used: usize,
    last_load_seq: Option<u64>,
    /// Dispatched-but-unissued micro-ops (their `seq`s, ascending): the
    /// issue stage walks this instead of rescanning the whole issue
    /// window every cycle. Invariant: exactly the ROB entries in state
    /// [`EState::Waiting`].
    waiting: Vec<u64>,
    /// `Store` entries currently in the ROB (fast-path gate for the
    /// store-to-load forwarding scan).
    rob_stores: usize,
    /// Post-retirement store buffer: block to write plus the source
    /// trace index of the store (persist-visibility attribution).
    store_buffer: VecDeque<(BlockId, usize)>,
    sb_busy: Cycle,
    pending_flushes: PendingOps,
    pending_pcommits: PendingOps,
    sp: Option<SpState>,
    /// Pipeline-side fault-injection streams (ack return/duplication,
    /// SSB and checkpoint pressure); `None` without a fault plan.
    faults: Option<FaultState>,
    /// Cycle of the most recent retirement (watchdog reference point).
    last_retire: Cycle,
    /// Coherence-visible store blocks accumulated since the last
    /// [`drain_snoops_into`](Self::drain_snoops_into), in
    /// memory-admission order. Empty (and never pushed to) unless a
    /// multi-core harness enabled emission — the single-core path pays
    /// one dead branch per drained store.
    snoop_out: Vec<BlockId>,
    /// Collect coherence-visible stores into `snoop_out`?
    emit_snoops: bool,
    stats: CpuStats,
    /// Observability probe (disabled by default — one dead branch per
    /// emission site). Never influences timing or architectural state.
    probe: ProbeHandle,
    /// Cycle the current fence-stall episode opened at, if one is open
    /// (probe bookkeeping only).
    fence_stall_open: Option<Cycle>,
    /// Persist-visibility log (litmus harness). `None` unless enabled —
    /// the default path pays one dead branch per persist effect. Pure
    /// recording: never influences timing or architectural state.
    vislog: Option<Vec<VisEvent>>,
}

impl<'t> Pipeline<'t> {
    /// Builds a pipeline over a recorded event trace with its own
    /// private memory system.
    pub fn new(events: &'t [Event], cfg: CpuConfig) -> Self {
        Self::with_memory(events, cfg, MemorySystem::new(cfg.mem))
    }

    /// Builds a pipeline over an explicitly constructed memory system
    /// (e.g. one sharing its memory controller with other cores — see
    /// [`crate::MultiCore`]).
    pub fn with_memory(events: &'t [Event], cfg: CpuConfig, mem: MemorySystem) -> Self {
        Pipeline {
            cursor: TraceCursor::new(events),
            mem,
            now: 0,
            fetchq: VecDeque::with_capacity(cfg.fetch_queue),
            rob: VecDeque::with_capacity(cfg.rob_entries),
            seq_base: 0,
            next_seq: 0,
            lsq_used: 0,
            last_load_seq: None,
            waiting: Vec::with_capacity(cfg.rob_entries),
            rob_stores: 0,
            store_buffer: VecDeque::with_capacity(cfg.store_buffer),
            sb_busy: 0,
            pending_flushes: PendingOps::new(),
            pending_pcommits: PendingOps::new(),
            sp: cfg.sp.map(SpState::new),
            faults: cfg.mem.fault.map(|spec| FaultState::new(spec, PIPE_STREAM)),
            last_retire: 0,
            snoop_out: Vec::new(),
            emit_snoops: false,
            stats: CpuStats::default(),
            probe: ProbeHandle::disabled(),
            fence_stall_open: None,
            vislog: None,
            cfg,
        }
    }

    /// Starts recording the persist-visibility log: one [`VisEvent`]
    /// per store drain, flush posting, `pcommit` issue, and realized
    /// fence. Off by default. See [`crate::vislog`].
    pub fn enable_persist_log(&mut self) {
        self.vislog = Some(Vec::new());
    }

    /// Takes the recorded persist-visibility log (empty if logging was
    /// never enabled). Entries are in recording order; feed them to
    /// [`crate::vislog::reconstruct`], which orders by visibility time.
    pub fn take_persist_log(&mut self) -> Vec<VisEvent> {
        self.vislog.take().unwrap_or_default()
    }

    /// Attaches an observability probe to the pipeline and its memory
    /// system. Probes observe epoch lifecycle, pcommit latency, fence
    /// stalls, and buffer occupancy; they never change simulated timing
    /// or architectural state (pinned by the probe-neutrality tests).
    pub fn set_probe(&mut self, probe: ProbeHandle) {
        self.mem.set_probe(probe.clone());
        self.probe = probe;
    }

    /// Current simulated cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Has every micro-op retired and every buffer drained?
    pub fn is_done(&self) -> bool {
        self.cursor.is_done()
            && self.fetchq.is_empty()
            && self.rob.is_empty()
            && self.store_buffer.is_empty()
            && self
                .sp
                .as_ref()
                .is_none_or(|sp| sp.ssb.is_empty() && sp.epochs.is_empty() && !sp.speculating)
    }

    /// Runs to completion and returns the results.
    ///
    /// # Panics
    ///
    /// Panics if the simulation fails (watchdog, deadlock, or broken
    /// invariant); use [`Pipeline::try_run`] to handle the error.
    pub fn run(self) -> SimResult {
        match self.try_run() {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }

    /// Runs to completion, surfacing simulation failures as typed
    /// errors.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] (with a [`DiagnosticSnapshot`]) if the
    /// forward-progress watchdog fires, the pipeline deadlocks, or an
    /// internal invariant breaks.
    pub fn try_run(mut self) -> Result<SimResult, SimError> {
        while !self.is_done() {
            self.step()?;
        }
        if let Some(opened) = self.fence_stall_open.take() {
            self.probe.emit(ProbeEvent::FenceStallEnd {
                now: self.now,
                stalled: self.now.saturating_sub(opened),
            });
        }
        Ok(self.result())
    }

    /// Advances one cycle (or skips idle time to the next event).
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] on watchdog expiry, deadlock, or a broken
    /// internal invariant.
    pub fn step(&mut self) -> Result<(), SimError> {
        match self.step_inner() {
            Ok(()) => Ok(()),
            Err(e) => {
                let kind = match e {
                    StepErr::Broken(what) => SimErrorKind::BrokenInvariant { what },
                    StepErr::Wedged => SimErrorKind::NoFutureEvent,
                    StepErr::Watchdog(bound) => SimErrorKind::NoRetireProgress { bound },
                };
                Err(SimError {
                    kind,
                    snapshot: Box::new(self.snapshot()),
                })
            }
        }
    }

    fn step_inner(&mut self) -> Result<(), StepErr> {
        if !self.probe.is_enabled() {
            return self.step_body();
        }
        // Instrumented path: attribute this step's retirement-stall
        // cycles by diffing the four stall counters around the body, so
        // probe attribution is identical to `CpuStats` by construction.
        let at = self.now;
        let before = self.stats;
        let out = self.step_body();
        self.emit_stall_probes(at, &before);
        out
    }

    /// Emits `RetireStall` deltas and fence-stall episode transitions for
    /// one step that started at cycle `at` with counters `before`.
    fn emit_stall_probes(&mut self, at: Cycle, before: &CpuStats) {
        let s = self.stats;
        let deltas = [
            (
                s.fetch_stall_cycles - before.fetch_stall_cycles,
                StallCause::Backend,
            ),
            (
                s.fence_stall_cycles - before.fence_stall_cycles,
                StallCause::Fence,
            ),
            (
                s.ssb_full_stall_cycles - before.ssb_full_stall_cycles,
                StallCause::SsbFull,
            ),
            (
                s.checkpoint_stall_cycles - before.checkpoint_stall_cycles,
                StallCause::CheckpointFull,
            ),
        ];
        for (cycles, cause) in deltas {
            if cycles > 0 {
                self.probe.emit(ProbeEvent::RetireStall {
                    now: at,
                    cause,
                    cycles,
                });
            }
        }
        let fence_stalling = s.fence_stall_cycles > before.fence_stall_cycles;
        match (self.fence_stall_open, fence_stalling) {
            (None, true) => {
                self.fence_stall_open = Some(at);
                self.probe.emit(ProbeEvent::FenceStallBegin { now: at });
            }
            (Some(opened), false) => {
                self.fence_stall_open = None;
                self.probe.emit(ProbeEvent::FenceStallEnd {
                    now: at,
                    stalled: at.saturating_sub(opened),
                });
            }
            _ => {}
        }
    }

    fn step_body(&mut self) -> Result<(), StepErr> {
        // Amortized drop of completed persist ops — timing-invisible
        // (see `PendingOps`), keeps every later scan this step short.
        self.pending_flushes.prune(self.now);
        self.pending_pcommits.prune(self.now);
        let mut progressed = false;
        progressed |= self.commit_drain()?;
        let retire_block = self.retire()?;
        progressed |= retire_block.progressed;
        progressed |= self.drain_store_buffer();
        progressed |= self.issue();
        let dispatched = self.dispatch();
        progressed |= dispatched > 0;
        progressed |= self.fetch();

        let fetch_stalled = !self.fetchq.is_empty() && dispatched == 0;
        if fetch_stalled {
            self.stats.fetch_stall_cycles += 1;
        }

        if progressed || self.is_done() {
            self.now += 1;
        } else if self.fault_retry(&retire_block) {
            // A fault is denying SSB or checkpoint resources: the denial
            // is re-drawn per attempt, so retry next cycle rather than
            // sleeping until a scheduled event that may never come.
            self.now += 1;
        } else {
            let Some(target) = self.next_event_time() else {
                return Err(StepErr::Wedged);
            };
            debug_assert!(
                target > self.now,
                "no-progress cycle must have a future event"
            );
            let skipped = target - self.now - 1;
            if fetch_stalled {
                self.stats.fetch_stall_cycles += skipped;
            }
            if retire_block.fence {
                self.stats.fence_stall_cycles += skipped;
            }
            if retire_block.ssb_full {
                self.stats.ssb_full_stall_cycles += skipped;
            }
            if retire_block.checkpoint {
                self.stats.checkpoint_stall_cycles += skipped;
            }
            self.now = target;
        }
        self.stats.cycles = self.now;

        let bound = self.cfg.watchdog_cycles;
        if bound > 0 && self.now.saturating_sub(self.last_retire) > bound && !self.is_done() {
            return Err(StepErr::Watchdog(bound));
        }
        Ok(())
    }

    /// Should a no-progress cycle retry instead of sleeping? True when a
    /// resource-denial fault may be the cause (its draw can clear on any
    /// retry, so there need not be a scheduled wake-up event).
    fn fault_retry(&self, block: &RetireBlock) -> bool {
        (block.ssb_full || block.checkpoint)
            && self
                .faults
                .as_ref()
                .is_some_and(|f| f.spec().denies_resources())
    }

    /// Captures the diagnostic state attached to [`SimError`]s (public
    /// so harnesses can also inspect a healthy pipeline mid-run).
    pub fn snapshot(&mut self) -> DiagnosticSnapshot {
        let mut snap = DiagnosticSnapshot {
            cycle: self.now,
            rob_head: self.rob.front().map(|e| e.uop),
            rob_len: self.rob.len(),
            fetchq_len: self.fetchq.len(),
            store_buffer_len: self.store_buffer.len(),
            lsq_used: self.lsq_used,
            pending_flushes: self.pending_flushes.outstanding_count(self.now),
            pending_pcommits: self.pending_pcommits.outstanding_count(self.now),
            trace_done: self.cursor.is_done(),
            wpq_depth: self.mem.wpq_occupancy(self.now),
            wpq_next_drain: self.mem.next_completion(self.now),
            ..DiagnosticSnapshot::default()
        };
        if let Some(sp) = &self.sp {
            snap.speculating = sp.speculating;
            snap.ssb_len = sp.ssb.len();
            for e in sp.ssb.iter() {
                match snap.ssb_per_epoch.last_mut() {
                    Some(last) if last.0 == e.epoch => last.1 += 1,
                    _ => snap.ssb_per_epoch.push((e.epoch, 1)),
                }
            }
            snap.checkpoints_live = sp.epochs.checkpoints_live();
            snap.checkpoint_capacity = sp.epochs.checkpoint_capacity();
        }
        snap
    }

    /// Assembles the final statistics.
    pub fn result(&self) -> SimResult {
        let mut r = SimResult {
            cpu: self.stats,
            mem: self.mem.stats(),
            mc: self.mem.mc_stats(),
            ..SimResult::default()
        };
        r.cpu.cycles = self.now;
        r.faults = self.mem.fault_stats().merged(
            self.faults
                .as_ref()
                .map(FaultState::stats)
                .unwrap_or_default(),
        );
        if let Some(sp) = &self.sp {
            r.ssb = sp.ssb.stats();
            r.bloom = sp.bloom.stats();
            r.checkpoints = sp.epochs.checkpoint_stats();
            r.blt = sp.blt.stats();
            let (epochs, rollbacks) = sp.epochs.counters();
            r.cpu.epochs = epochs;
            r.cpu.rollbacks = rollbacks;
        }
        r
    }

    // ---- external coherence (tests / multicore harnesses) -------------

    /// Current trace-decode position (advances with fetch, rewinds on
    /// rollback). A multi-core harness compares positions across
    /// consecutive rollbacks to detect a conflict storm that re-executes
    /// the same window forever.
    pub fn trace_position(&self) -> usize {
        self.cursor.position()
    }

    /// Starts collecting the blocks of coherence-visible stores (store
    /// buffer and committed-SSB drains) for [`Self::drain_snoops_into`].
    /// Off by default: a solo core has nobody to snoop, and collection
    /// must not cost the single-core path an allocation.
    pub(crate) fn enable_snoop_emission(&mut self) {
        self.emit_snoops = true;
    }

    /// Moves the coherence-visible store blocks accumulated since the
    /// last call into `out`, preserving memory-admission order (the
    /// order the shared controller saw the writes).
    pub(crate) fn drain_snoops_into(&mut self, out: &mut Vec<BlockId>) {
        out.append(&mut self.snoop_out);
    }

    /// Delivers an external coherence request for `block`. Returns
    /// `true` if it conflicted with speculative state and triggered a
    /// rollback to the oldest checkpoint.
    pub fn inject_coherence(&mut self, block: BlockId) -> bool {
        let Some(sp) = &mut self.sp else { return false };
        // Count the snoop even outside speculation (the table is empty
        // then, so it is always a miss): a core's snoop count is a pure
        // function of its peers' store streams, independent of how
        // same-cycle scheduling ties were broken.
        let hit = sp.blt.snoop(block);
        if !sp.epochs.speculating() || !hit {
            return false;
        }
        // Rollback: squash everything younger than the oldest checkpoint.
        // (`speculating()` was checked above, so both are `Some`.)
        let Some(oldest) = sp.epochs.oldest() else {
            return false;
        };
        let oldest_epoch = oldest.id;
        let Some(resume) = sp.epochs.rollback() else {
            return false;
        };
        sp.ssb.flush_from(oldest_epoch);
        sp.gates.clear();
        sp.blt.clear();
        sp.speculating = false;
        let mut squashed = EpochRetired::default();
        for &(_, r) in &sp.retired_per_epoch {
            squashed.merge(r);
        }
        sp.retired_per_epoch.clear();
        self.stats.squashed_uops += squashed.uops;
        squashed.retract(&mut self.stats);
        self.stats.rollbacks += 1;
        self.probe.emit(ProbeEvent::EpochRollback {
            now: self.now,
            squashed_uops: squashed.uops,
        });
        self.probe.emit(ProbeEvent::CheckpointOccupancy {
            now: self.now,
            live: sp.epochs.checkpoints_live(),
            capacity: sp.epochs.checkpoint_capacity(),
        });
        self.probe.emit(ProbeEvent::SsbOccupancy {
            now: self.now,
            occupancy: sp.ssb.len(),
            capacity: sp.cfg.ssb.entries,
        });
        self.fetchq.clear();
        self.rob.clear();
        self.waiting.clear();
        self.rob_stores = 0;
        self.seq_base = self.next_seq;
        self.lsq_used = 0;
        self.last_load_seq = None;
        self.cursor.set_position(resume);
        true
    }

    // ---- fetch / dispatch ---------------------------------------------

    fn fetch(&mut self) -> bool {
        let mut any = false;
        for _ in 0..self.cfg.width {
            if self.fetchq.len() >= self.cfg.fetch_queue {
                break;
            }
            match self.cursor.next_uop() {
                Some(u) => {
                    self.fetchq.push_back(u);
                    any = true;
                }
                None => break,
            }
        }
        any
    }

    fn dispatch(&mut self) -> usize {
        let mut n = 0;
        while n < self.cfg.width {
            let Some(&uop) = self.fetchq.front() else {
                break;
            };
            if self.rob.len() >= self.cfg.rob_entries {
                break;
            }
            if uop.kind.is_mem() && self.lsq_used >= self.cfg.lsq_entries {
                break;
            }
            self.fetchq.pop_front();
            let seq = self.next_seq;
            self.next_seq += 1;
            // Dependent loads chain behind the previous *dependent* load
            // (the pointer chain); independent field reads in between do
            // not break the chain.
            let is_dep = matches!(uop.kind, UopKind::Load { dep: true, .. });
            let prev_load = if is_dep { self.last_load_seq } else { None };
            if is_dep {
                self.last_load_seq = Some(seq);
            }
            if uop.kind.is_mem() {
                self.lsq_used += 1;
            }
            let state = match uop.kind {
                UopKind::Compute | UopKind::Load { .. } | UopKind::Store { .. } => EState::Waiting,
                _ => EState::Ready,
            };
            if state == EState::Waiting {
                self.waiting.push(seq);
            }
            if matches!(uop.kind, UopKind::Store { .. }) {
                self.rob_stores += 1;
            }
            self.rob.push_back(RobEntry {
                uop,
                seq,
                state,
                prev_load,
            });
            n += 1;
        }
        n
    }

    // ---- issue ----------------------------------------------------------

    /// Issues up to `width` micro-ops from the waiting list.
    ///
    /// The list holds the `seq`s of exactly the `Waiting` ROB entries,
    /// ascending — the same order a front-to-back window scan visits
    /// them — so decisions (and their fault/memory side effects) are
    /// identical to the reference stepper's full-window rescan, at the
    /// cost of the blocked entries only. Issued entries are compacted
    /// out in place; nothing allocates.
    fn issue(&mut self) -> bool {
        if self.waiting.is_empty() {
            return false;
        }
        let window = self.cfg.issue_queue.min(self.rob.len());
        let mut issued = 0;
        let mut kept = 0;
        let mut scan = 0;
        while scan < self.waiting.len() {
            if issued >= self.cfg.width {
                break;
            }
            let seq = self.waiting[scan];
            let i = (seq - self.seq_base) as usize;
            if i >= window {
                // Seqs ascend: everything further is younger still.
                break;
            }
            debug_assert_eq!(self.rob[i].seq, seq);
            debug_assert_eq!(self.rob[i].state, EState::Waiting);
            let mut done = None;
            match self.rob[i].uop.kind {
                UopKind::Compute | UopKind::Store { .. } => done = Some(self.now + 1),
                UopKind::Load { addr, dep } => {
                    // Dependent loads wait on the previous load in the
                    // pointer chain (already-retired predecessors count
                    // as complete).
                    let blocked = dep
                        && self.rob[i].prev_load.is_some_and(|prev| {
                            prev >= self.seq_base
                                && !self.rob[(prev - self.seq_base) as usize].complete(self.now)
                        });
                    if !blocked {
                        // Store-to-load forwarding from older, unretired
                        // stores in the window.
                        let forwarded = self.rob_stores > 0
                            && self.rob.iter().take(i).any(
                                |e| matches!(e.uop.kind, UopKind::Store { addr: a } if a == addr),
                            );
                        done = Some(if forwarded {
                            self.stats.lsq_forwards += 1;
                            self.now + 1
                        } else {
                            self.load_completion(addr)
                        });
                    }
                }
                // Barrier/flush kinds dispatch as `Ready` and never
                // enter the waiting list.
                _ => {}
            }
            if let Some(d) = done {
                self.rob[i].state = EState::Exec(d);
                issued += 1;
            } else {
                self.waiting[kept] = seq;
                kept += 1;
            }
            scan += 1;
        }
        if issued > 0 {
            let len = self.waiting.len();
            self.waiting.copy_within(scan..len, kept);
            self.waiting.truncate(kept + len - scan);
        }
        issued > 0
    }

    /// Computes a load's completion: bloom + SSB forwarding path when
    /// speculative state may be buffered, cache hierarchy otherwise.
    fn load_completion(&mut self, addr: PAddr) -> Cycle {
        let now = self.now;
        if let Some(sp) = &mut self.sp {
            if sp.speculating {
                sp.blt.record(addr.block());
            }
            if !sp.ssb.is_empty() && sp.bloom.query(addr) {
                let after_cam = now + sp.cfg.ssb.latency;
                if sp.ssb.forwards(addr) {
                    self.stats.ssb_forwards += 1;
                    return after_cam;
                }
                sp.bloom.record_false_positive();
                let (done, _) = self.mem.access(after_cam, addr.block(), AccessKind::Load);
                return done;
            }
        }
        let (done, _) = self.mem.access(now, addr.block(), AccessKind::Load);
        done
    }

    // ---- retire ----------------------------------------------------------

    fn note_spec_retired(&mut self, kind: UopKind) {
        if let Some(sp) = &mut self.sp {
            if sp.speculating {
                if let Some(back) = sp.retired_per_epoch.back_mut() {
                    back.1.note(kind);
                }
            }
        }
    }

    fn pop_retired(&mut self, class: impl Fn(&mut CpuStats)) -> Result<(), StepErr> {
        let Some(e) = self.rob.pop_front() else {
            return Err(StepErr::Broken("retired from an empty ROB"));
        };
        self.seq_base = e.seq + 1;
        if e.uop.kind.is_mem() {
            self.lsq_used -= 1;
        }
        if matches!(e.uop.kind, UopKind::Store { .. }) {
            self.rob_stores -= 1;
        }
        self.stats.committed_uops += 1;
        class(&mut self.stats);
        self.note_spec_retired(e.uop.kind);
        Ok(())
    }

    /// Draws the SSB-pressure site; `true` when a fault denies this
    /// allocation attempt (the held slots cover all currently free
    /// ones).
    fn ssb_alloc_denied(&mut self) -> bool {
        let free = self.sp.as_ref().map_or(0, |s| s.ssb.free());
        if let Some(f) = self.faults.as_mut() {
            if let Some(Fault::SsbPressure { held }) = f.draw(FaultSite::SsbAlloc) {
                return free <= held;
            }
        }
        false
    }

    /// Draws the checkpoint-pressure site; `true` when a fault denies
    /// this allocation attempt.
    fn checkpoint_alloc_denied(&mut self) -> bool {
        self.faults.as_mut().is_some_and(|f| {
            matches!(
                f.draw(FaultSite::CheckpointAlloc),
                Some(Fault::CheckpointPressure)
            )
        })
    }

    /// Draws the ack-return and ack-duplication sites for a `pcommit`
    /// acknowledged at `done`: returns the (possibly delayed) arrival
    /// and queues a duplicate delivery if one fires.
    fn fault_ack(&mut self, mut done: Cycle) -> Cycle {
        if let Some(f) = self.faults.as_mut() {
            if let Some(Fault::PcommitAckDelay { extra }) = f.draw(FaultSite::AckReturn) {
                done += extra;
            }
            if let Some(Fault::PcommitAckDuplicate { redelivery }) = f.draw(FaultSite::AckDuplicate)
            {
                // The duplicate ack arrives later and must be tolerated:
                // it is one more pending acknowledgement for fences to
                // wait out, never a second drain.
                self.pending_pcommits.push(done + redelivery);
            }
        }
        done
    }

    fn pcommit_outstanding(&self) -> bool {
        self.pending_pcommits.outstanding(self.now)
    }

    fn retire(&mut self) -> Result<RetireBlock, StepErr> {
        let mut block = RetireBlock::default();
        let mut retired = 0;
        while retired < self.cfg.width {
            let Some(head) = self.rob.front().copied() else {
                break;
            };
            if !head.complete(self.now) {
                break;
            }
            let speculating = self.sp.as_ref().is_some_and(|s| s.speculating);
            match head.uop.kind {
                UopKind::Compute => {
                    self.pop_retired(|_| {})?;
                }
                UopKind::Load { .. } => {
                    self.pop_retired(|s| s.loads += 1)?;
                }
                UopKind::Store { addr } => {
                    if !self.retire_store(addr, head.uop.trace_idx, &mut block)? {
                        break;
                    }
                }
                UopKind::Clwb { block: b } | UopKind::ClflushOpt { block: b } => {
                    let invalidate = matches!(head.uop.kind, UopKind::ClflushOpt { .. });
                    // clwb is ordered behind older stores to the same
                    // line: wait for the store buffer to drain.
                    if !self.store_buffer.is_empty() {
                        break;
                    }
                    if speculating || self.ssb_nonempty() {
                        let op = if invalidate {
                            SsbOp::ClflushOpt { block: b }
                        } else {
                            SsbOp::Clwb { block: b }
                        };
                        if !self.push_ssb(op, head.uop.trace_idx)? {
                            block.ssb_full = true;
                            self.stats.ssb_full_stall_cycles += 1;
                            break;
                        }
                    } else {
                        let f = self.mem.flush(self.now, b, invalidate);
                        self.pending_flushes.push(f.visible_at);
                        if let Some(l) = self.vislog.as_mut() {
                            l.push(VisEvent {
                                at: self.now,
                                op: VisOp::Flush {
                                    trace_idx: head.uop.trace_idx,
                                },
                            });
                        }
                    }
                    if self.pcommit_outstanding() {
                        self.stats.stores_while_pcommit += 1;
                    }
                    self.pop_retired(|s| s.flushes += 1)?;
                }
                UopKind::Clflush { block: b } => {
                    if !self.retire_clflush(b, head.uop.trace_idx, speculating, &mut block)? {
                        break;
                    }
                }
                UopKind::Pcommit => {
                    if speculating {
                        if !self.retire_spec_pcommit_pattern(head.uop.trace_idx, &mut block)? {
                            break;
                        }
                    } else if self.ssb_nonempty() {
                        if !self.push_ssb(SsbOp::Pcommit, head.uop.trace_idx)? {
                            block.ssb_full = true;
                            self.stats.ssb_full_stall_cycles += 1;
                            break;
                        }
                        self.pop_retired(|s| s.pcommits += 1)?;
                    } else {
                        if let Some(l) = self.vislog.as_mut() {
                            l.push(VisEvent {
                                at: self.now,
                                op: VisOp::Pcommit,
                            });
                        }
                        let done = self.mem.pcommit(self.now);
                        let done = self.fault_ack(done);
                        let inflight = 1 + self.pending_pcommits.outstanding_count(self.now) as u64;
                        self.stats.max_inflight_pcommits =
                            self.stats.max_inflight_pcommits.max(inflight);
                        self.pending_pcommits.push(done);
                        self.pop_retired(|s| s.pcommits += 1)?;
                    }
                }
                UopKind::Sfence | UopKind::Mfence => {
                    if !self.retire_fence(speculating, &mut block)? {
                        break;
                    }
                }
            }
            retired += 1;
        }
        if retired > 0 {
            self.last_retire = self.now;
        }
        block.progressed = retired > 0;
        Ok(block)
    }

    fn ssb_nonempty(&self) -> bool {
        self.sp.as_ref().is_some_and(|s| !s.ssb.is_empty())
    }

    /// Pushes an op into the SSB tagged with the current tail epoch and
    /// its source trace index.
    /// `Ok(false)` means the SSB is full (or a fault denied the slot).
    fn push_ssb(&mut self, op: SsbOp, trace_idx: usize) -> Result<bool, StepErr> {
        if self.ssb_alloc_denied() {
            return Ok(false);
        }
        let Some(sp) = self.sp.as_mut() else {
            return Err(StepErr::Broken("SSB push without SP"));
        };
        let epoch = if sp.speculating {
            let Some(youngest) = sp.epochs.youngest() else {
                return Err(StepErr::Broken("speculating with no live epoch"));
            };
            youngest.id
        } else {
            // Post-exit tail: ordered behind the already-committed drain.
            sp.committed_frontier.unwrap_or(0)
        };
        let pushed = if let SsbOp::Store { addr } = op {
            if sp
                .ssb
                .push(SsbEntry {
                    op,
                    epoch,
                    trace_idx,
                })
                .is_err()
            {
                return Ok(false);
            }
            sp.bloom.insert(addr);
            sp.bloom_dirty = true;
            if sp.speculating {
                sp.blt.record(addr.block());
            }
            true
        } else {
            sp.ssb
                .push(SsbEntry {
                    op,
                    epoch,
                    trace_idx,
                })
                .is_ok()
        };
        if pushed {
            self.probe.emit(ProbeEvent::SsbOccupancy {
                now: self.now,
                occupancy: sp.ssb.len(),
                capacity: sp.cfg.ssb.entries,
            });
        }
        Ok(pushed)
    }

    fn retire_store(
        &mut self,
        addr: PAddr,
        trace_idx: usize,
        block: &mut RetireBlock,
    ) -> Result<bool, StepErr> {
        let speculating = self.sp.as_ref().is_some_and(|s| s.speculating);
        if speculating || self.ssb_nonempty() {
            if !self.push_ssb(SsbOp::Store { addr }, trace_idx)? {
                block.ssb_full = true;
                self.stats.ssb_full_stall_cycles += 1;
                return Ok(false);
            }
        } else {
            if self.store_buffer.len() >= self.cfg.store_buffer {
                return Ok(false);
            }
            self.store_buffer.push_back((addr.block(), trace_idx));
        }
        if self.pcommit_outstanding() {
            self.stats.stores_while_pcommit += 1;
        }
        self.pop_retired(|s| s.stores += 1)?;
        Ok(true)
    }

    fn retire_clflush(
        &mut self,
        b: BlockId,
        trace_idx: usize,
        speculating: bool,
        block: &mut RetireBlock,
    ) -> Result<bool, StepErr> {
        if !self.store_buffer.is_empty() {
            return Ok(false);
        }
        if speculating || self.ssb_nonempty() {
            if !self.push_ssb(SsbOp::ClflushOpt { block: b }, trace_idx)? {
                block.ssb_full = true;
                return Ok(false);
            }
            self.pop_retired(|s| s.flushes += 1)?;
            return Ok(true);
        }
        // Legacy clflush serializes: issue once, then hold retirement
        // until visible.
        let Some(head) = self.rob.front() else {
            return Err(StepErr::Broken("clflush retire with an empty ROB"));
        };
        match head.state {
            EState::Ready => {
                let f = self.mem.flush(self.now, b, true);
                if let Some(h) = self.rob.front_mut() {
                    h.state = EState::Exec(f.visible_at);
                }
                if let Some(l) = self.vislog.as_mut() {
                    l.push(VisEvent {
                        at: self.now,
                        op: VisOp::Flush { trace_idx },
                    });
                }
                Ok(false)
            }
            EState::Exec(t) if t <= self.now => {
                self.pop_retired(|s| s.flushes += 1)?;
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Speculative-mode `pcommit` at the head: if followed by an
    /// `sfence` (and combining is on), consume both as the combined SSB
    /// opcode and open a child epoch at the trailing fence.
    fn retire_spec_pcommit_pattern(
        &mut self,
        trace_idx: usize,
        block: &mut RetireBlock,
    ) -> Result<bool, StepErr> {
        let Some(combine) = self.sp.as_ref().map(|s| s.cfg.combine_barrier) else {
            return Err(StepErr::Broken("speculative pcommit without SP"));
        };
        let next_is_sfence = self.rob.len() >= 2 && matches!(self.rob[1].uop.kind, UopKind::Sfence);
        if combine && next_is_sfence {
            return self.consume_combined_barrier(0, block);
        }
        if combine && self.rob.len() < 2 && !(self.cursor.is_done() && self.fetchq.is_empty()) {
            // The sfence is probably right behind; wait for dispatch.
            return Ok(false);
        }
        // Bare in-shadow pcommit: delay it into the SSB.
        if !self.push_ssb(SsbOp::Pcommit, trace_idx)? {
            block.ssb_full = true;
            self.stats.ssb_full_stall_cycles += 1;
            return Ok(false);
        }
        self.pop_retired(|s| s.pcommits += 1)?;
        Ok(true)
    }

    /// Consumes `pcommit`(at head offset 0 or 1) + trailing `sfence`:
    /// pushes the combined opcode, opens a child epoch checkpointed at
    /// the trailing fence. `pcommit_at` is the ROB index of the pcommit.
    /// Consumes nothing unless every resource check passes.
    fn consume_combined_barrier(
        &mut self,
        pcommit_at: usize,
        block: &mut RetireBlock,
    ) -> Result<bool, StepErr> {
        let fence_idx = pcommit_at + 1;
        debug_assert!(matches!(self.rob[pcommit_at].uop.kind, UopKind::Pcommit));
        debug_assert!(matches!(self.rob[fence_idx].uop.kind, UopKind::Sfence));
        let resume_idx = self.rob[fence_idx].uop.trace_idx;
        let pcommit_tidx = self.rob[pcommit_at].uop.trace_idx;
        let ssb_denied = self.ssb_alloc_denied();
        let ckpt_denied = self.checkpoint_alloc_denied();
        {
            let Some(sp) = self.sp.as_mut() else {
                return Err(StepErr::Broken("combined barrier without SP"));
            };
            if sp.ssb.free() < 1 || ssb_denied {
                block.ssb_full = true;
                self.stats.ssb_full_stall_cycles += 1;
                return Ok(false);
            }
            if !sp.epochs.can_begin() || ckpt_denied {
                block.checkpoint = true;
                self.stats.checkpoint_stall_cycles += 1;
                return Ok(false);
            }
            let Some(parent) = sp.epochs.youngest() else {
                return Err(StepErr::Broken("combined barrier while not speculating"));
            };
            let parent = parent.id;
            if sp
                .ssb
                .push(SsbEntry {
                    op: SsbOp::SfencePcommitSfence,
                    epoch: parent,
                    trace_idx: pcommit_tidx,
                })
                .is_err()
            {
                return Err(StepErr::Broken("SSB push failed after free-space check"));
            }
            self.probe.emit(ProbeEvent::SsbOccupancy {
                now: self.now,
                occupancy: sp.ssb.len(),
                capacity: sp.cfg.ssb.entries,
            });
            let Ok(child) = sp.epochs.begin(resume_idx, self.now) else {
                return Err(StepErr::Broken("checkpoint begin failed after can_begin"));
            };
            sp.gates.push_back(Gate {
                epoch: child,
                ready_at: None,
                needs_prior_drain: false,
            });
            sp.retired_per_epoch
                .push_back((child, EpochRetired::default()));
            self.probe.emit(ProbeEvent::EpochBegin {
                now: self.now,
                epoch: child,
            });
            self.probe.emit(ProbeEvent::CheckpointOccupancy {
                now: self.now,
                live: sp.epochs.checkpoints_live(),
                capacity: sp.epochs.checkpoint_capacity(),
            });
        }
        self.stats.epochs += 1;
        // Retire the consumed micro-ops (leading sfence if present,
        // pcommit, trailing sfence).
        for _ in 0..=fence_idx {
            let Some(e) = self.rob.pop_front() else {
                return Err(StepErr::Broken("combined pattern missing its ROB entries"));
            };
            self.seq_base = e.seq + 1;
            self.stats.committed_uops += 1;
            match e.uop.kind {
                UopKind::Pcommit => self.stats.pcommits += 1,
                UopKind::Sfence => self.stats.fences += 1,
                _ => return Err(StepErr::Broken("combined pattern held a non-barrier uop")),
            }
        }
        // Squash attribution: the child's checkpoint resumes at the
        // trailing sfence, so only that micro-op belongs to the child;
        // the leading sfence/pcommit precede the checkpoint and belong
        // to the parent epoch.
        if let Some(sp) = &mut self.sp {
            let n = sp.retired_per_epoch.len();
            debug_assert!(n >= 2, "combined barrier needs a parent epoch");
            if n >= 2 {
                let parent = &mut sp.retired_per_epoch[n - 2].1;
                parent.uops += fence_idx as u64;
                parent.pcommits += 1;
                parent.fences += fence_idx as u64 - 1;
            }
            if let Some(back) = sp.retired_per_epoch.back_mut() {
                back.1.uops += 1;
                back.1.fences += 1;
            }
        }
        Ok(true)
    }

    fn retire_fence(
        &mut self,
        speculating: bool,
        block: &mut RetireBlock,
    ) -> Result<bool, StepErr> {
        if speculating {
            // In-shadow fence: combined pattern or a bare child epoch.
            let Some(combine) = self.sp.as_ref().map(|s| s.cfg.combine_barrier) else {
                return Err(StepErr::Broken("speculative fence without SP"));
            };
            let pat = combine
                && self.rob.len() >= 3
                && matches!(self.rob[0].uop.kind, UopKind::Sfence)
                && matches!(self.rob[1].uop.kind, UopKind::Pcommit)
                && matches!(self.rob[2].uop.kind, UopKind::Sfence);
            if pat {
                // Leading sfence + pcommit + trailing sfence: the
                // combined path checks resources before consuming, so it
                // can take all three directly.
                return self.consume_combined_barrier(1, block);
            }
            if combine && self.rob.len() < 3 && !(self.cursor.is_done() && self.fetchq.is_empty()) {
                return Ok(false); // wait for the rest of the pattern
            }
            // Bare fence: new child epoch (no pending pcommit of its own).
            let Some(head) = self.rob.front() else {
                return Err(StepErr::Broken("fence retire with an empty ROB"));
            };
            let resume_idx = head.uop.trace_idx;
            let ckpt_denied = self.checkpoint_alloc_denied();
            {
                let Some(sp) = self.sp.as_mut() else {
                    return Err(StepErr::Broken("speculative fence without SP"));
                };
                if !sp.epochs.can_begin() || ckpt_denied {
                    block.checkpoint = true;
                    self.stats.checkpoint_stall_cycles += 1;
                    return Ok(false);
                }
                let Ok(child) = sp.epochs.begin(resume_idx, self.now) else {
                    return Err(StepErr::Broken("checkpoint begin failed after can_begin"));
                };
                sp.gates.push_back(Gate {
                    epoch: child,
                    ready_at: Some(self.now),
                    needs_prior_drain: true,
                });
                sp.retired_per_epoch
                    .push_back((child, EpochRetired::default()));
                self.probe.emit(ProbeEvent::EpochBegin {
                    now: self.now,
                    epoch: child,
                });
                self.probe.emit(ProbeEvent::CheckpointOccupancy {
                    now: self.now,
                    live: sp.epochs.checkpoints_live(),
                    capacity: sp.epochs.checkpoint_capacity(),
                });
            }
            self.stats.epochs += 1;
            self.pop_retired(|s| s.fences += 1)?;
            return Ok(true);
        }

        // Non-speculative fence: wait for the store buffer and all
        // posted persist operations.
        if !self.store_buffer.is_empty() {
            block.fence = true;
            self.stats.fence_stall_cycles += 1;
            return Ok(false);
        }
        let now = self.now;
        let flushes_pending = self.pending_flushes.outstanding(now);
        let pcommits_pending = self.pending_pcommits.outstanding(now);
        let drain_pending = self.ssb_nonempty()
            || self
                .sp
                .as_ref()
                .is_some_and(|s| s.drain_visible_frontier > now);
        if !flushes_pending && !pcommits_pending && !drain_pending {
            if let Some(l) = self.vislog.as_mut() {
                l.push(VisEvent {
                    at: now,
                    op: VisOp::Fence,
                });
            }
            self.pop_retired(|s| s.fences += 1)?;
            return Ok(true);
        }
        // Blocked. Trigger speculation if enabled and the wait involves
        // pcommit acknowledgements or a pending SSB drain (§4.2.1); a
        // pure clwb-visibility wait is short and simply stalls.
        if self.sp.is_some() && (pcommits_pending || drain_pending) {
            let Some(head) = self.rob.front() else {
                return Err(StepErr::Broken("fence retire with an empty ROB"));
            };
            let resume_idx = head.uop.trace_idx;
            let gate_time = self
                .pending_flushes
                .last_outstanding(now)
                .into_iter()
                .chain(self.pending_pcommits.last_outstanding(now))
                .max()
                .unwrap_or(now);
            let ckpt_denied = self.checkpoint_alloc_denied();
            let Some(sp) = self.sp.as_mut() else {
                return Err(StepErr::Broken("speculation entry without SP"));
            };
            if !sp.epochs.can_begin() || ckpt_denied {
                block.checkpoint = true;
                self.stats.checkpoint_stall_cycles += 1;
                return Ok(false);
            }
            let Ok(e0) = sp.epochs.begin(resume_idx, now) else {
                return Err(StepErr::Broken("checkpoint begin failed after can_begin"));
            };
            sp.gates.push_back(Gate {
                epoch: e0,
                ready_at: Some(gate_time),
                needs_prior_drain: drain_pending,
            });
            sp.retired_per_epoch
                .push_back((e0, EpochRetired::default()));
            sp.speculating = true;
            self.probe.emit(ProbeEvent::EpochBegin { now, epoch: e0 });
            self.probe.emit(ProbeEvent::CheckpointOccupancy {
                now,
                live: sp.epochs.checkpoints_live(),
                capacity: sp.epochs.checkpoint_capacity(),
            });
            self.stats.epochs += 1;
            self.pending_flushes.clear();
            self.pending_pcommits.clear();
            self.pop_retired(|s| s.fences += 1)?;
            return Ok(true);
        }
        block.fence = true;
        self.stats.fence_stall_cycles += 1;
        Ok(false)
    }

    // ---- store buffer ----------------------------------------------------

    fn drain_store_buffer(&mut self) -> bool {
        let mut any = false;
        while self.sb_busy <= self.now {
            let Some((b, trace_idx)) = self.store_buffer.pop_front() else {
                break;
            };
            // Posted write: state effects now, 1/cycle pacing. This is
            // where a non-speculative store claims ownership, so it is
            // the point other cores' BLTs must snoop.
            let _ = self.mem.access(self.now, b, AccessKind::Store);
            if self.emit_snoops {
                self.snoop_out.push(b);
            }
            if let Some(l) = self.vislog.as_mut() {
                l.push(VisEvent {
                    at: self.now,
                    op: VisOp::Store { trace_idx },
                });
            }
            self.sb_busy = self.now + 1;
            any = true;
        }
        any
    }

    // ---- SP commit & drain -------------------------------------------------

    fn commit_drain(&mut self) -> Result<bool, StepErr> {
        let now = self.now;
        let Some(sp) = &mut self.sp else {
            return Ok(false);
        };
        let mut progressed = false;

        // Commit epochs whose gates pass, oldest first.
        while let Some(oldest) = sp.epochs.oldest() {
            let Some(gate) = sp.gates.front() else {
                return Err(StepErr::Broken("live epoch without a commit gate"));
            };
            debug_assert_eq!(gate.epoch, oldest.id);
            let Some(t) = gate.ready_at else { break };
            if t > now {
                break;
            }
            if gate.needs_prior_drain {
                let older_drained = sp.ssb.peek_front().is_none_or(|f| f.epoch >= oldest.id);
                if !older_drained || sp.drain_busy > now || sp.drain_visible_frontier > now {
                    break;
                }
            }
            if sp.epochs.commit_oldest().is_none() {
                return Err(StepErr::Broken("commit of a vanished epoch"));
            }
            sp.gates.pop_front();
            sp.retired_per_epoch.pop_front();
            sp.committed_frontier = Some(oldest.id);
            // Each epoch corresponds to exactly one program fence (the
            // one whose speculative retirement opened it); its ordering
            // guarantee is realized here, at commit.
            if let Some(l) = self.vislog.as_mut() {
                l.push(VisEvent {
                    at: now,
                    op: VisOp::Fence,
                });
            }
            self.probe.emit(ProbeEvent::EpochCommit {
                now,
                epoch: oldest.id,
                began_at: oldest.checkpoint.taken_at,
            });
            self.probe.emit(ProbeEvent::CheckpointOccupancy {
                now,
                live: sp.epochs.checkpoints_live(),
                capacity: sp.epochs.checkpoint_capacity(),
            });
            if sp.epochs.is_empty() {
                // Exiting speculation; the SSB drains in the background.
                sp.speculating = false;
                sp.blt.clear();
            }
            progressed = true;
        }

        // Drain committed entries from the SSB front.
        while sp.drain_busy <= now {
            let Some(front) = sp.ssb.peek_front() else {
                break;
            };
            if !sp.frontier_committed(front.epoch) {
                break;
            }
            let Some(e) = sp.ssb.pop_front() else {
                return Err(StepErr::Broken("SSB entry vanished mid-drain"));
            };
            let t = sp.drain_busy.max(now);
            match e.op {
                SsbOp::Store { addr } => {
                    // A speculative store stays invisible in the SSB;
                    // draining it after epoch commit is its coherence
                    // visibility point, so it snoops other cores here.
                    let _ = self.mem.access(t, addr.block(), AccessKind::Store);
                    if self.emit_snoops {
                        self.snoop_out.push(addr.block());
                    }
                    if let Some(l) = self.vislog.as_mut() {
                        l.push(VisEvent {
                            at: t,
                            op: VisOp::Store {
                                trace_idx: e.trace_idx,
                            },
                        });
                    }
                    sp.drain_busy = t + 1;
                }
                SsbOp::Clwb { block } => {
                    let f = self.mem.flush(t, block, false);
                    sp.drain_visible_frontier = sp.drain_visible_frontier.max(f.visible_at);
                    if let Some(l) = self.vislog.as_mut() {
                        l.push(VisEvent {
                            at: t,
                            op: VisOp::Flush {
                                trace_idx: e.trace_idx,
                            },
                        });
                    }
                    sp.drain_busy = t + 1;
                }
                SsbOp::ClflushOpt { block } => {
                    let f = self.mem.flush(t, block, true);
                    sp.drain_visible_frontier = sp.drain_visible_frontier.max(f.visible_at);
                    if let Some(l) = self.vislog.as_mut() {
                        l.push(VisEvent {
                            at: t,
                            op: VisOp::Flush {
                                trace_idx: e.trace_idx,
                            },
                        });
                    }
                    sp.drain_busy = t + 1;
                }
                SsbOp::Pcommit => {
                    let _ = self.mem.pcommit(t);
                    if let Some(l) = self.vislog.as_mut() {
                        l.push(VisEvent {
                            at: t,
                            op: VisOp::Pcommit,
                        });
                    }
                    sp.drain_busy = t + 1;
                }
                SsbOp::SfencePcommitSfence => {
                    // The leading fence orders the drained writebacks;
                    // then the pcommit issues and its ack gates the next
                    // epoch.
                    let issue = t.max(sp.drain_visible_frontier);
                    if let Some(l) = self.vislog.as_mut() {
                        l.push(VisEvent {
                            at: issue,
                            op: VisOp::Fence,
                        });
                        l.push(VisEvent {
                            at: issue,
                            op: VisOp::Pcommit,
                        });
                    }
                    let mut done = self.mem.pcommit(issue);
                    // Ack faults apply here too: a delayed ack holds the
                    // next epoch's gate; a duplicate becomes one more
                    // pending acknowledgement for later fences.
                    if let Some(f) = self.faults.as_mut() {
                        if let Some(Fault::PcommitAckDelay { extra }) = f.draw(FaultSite::AckReturn)
                        {
                            done += extra;
                        }
                        if let Some(Fault::PcommitAckDuplicate { redelivery }) =
                            f.draw(FaultSite::AckDuplicate)
                        {
                            self.pending_pcommits.push(done + redelivery);
                        }
                    }
                    let inflight = 1 + self.pending_pcommits.outstanding_count(now) as u64;
                    self.stats.max_inflight_pcommits =
                        self.stats.max_inflight_pcommits.max(inflight);
                    if let Some(g) = sp.gates.front_mut() {
                        if g.ready_at.is_none() {
                            g.ready_at = Some(done);
                        }
                    }
                    sp.drain_busy = issue + 1;
                }
            }
            self.probe.emit(ProbeEvent::SsbOccupancy {
                now,
                occupancy: sp.ssb.len(),
                capacity: sp.cfg.ssb.entries,
            });
            progressed = true;
        }

        // Bloom filter resets on exiting speculative execution — once
        // the post-exit drain finishes, so no buffered store can lose
        // its filter bits (no false negatives). Stores that drained
        // before the reset leave stale bits behind: the false-positive
        // source the paper identifies in Fig. 14.
        if !sp.speculating && sp.ssb.is_empty() && sp.bloom_dirty {
            sp.bloom.reset();
            sp.bloom_dirty = false;
            progressed = true;
        }
        Ok(progressed)
    }

    // ---- idle-time skipping ------------------------------------------------
    //
    // The next-event scheduler: on a no-progress cycle each structure
    // reports the earliest future cycle at which it can change state,
    // and `step_body` jumps `now` straight to the minimum instead of
    // ticking through dead cycles. Two classes of waits are deliberately
    // *not* in the wake set, matching the reference stepper exactly:
    //
    // * Memory-controller (WPQ/bank) timers — their completion times
    //   flow back through the posting interfaces (`access`/`flush`/
    //   `pcommit` all return absolute cycles), so they are already
    //   mirrored into the ROB `Exec` times, the pending persist sets,
    //   and the SP gates. `MemorySystem::next_completion` exposes the
    //   controller-side view for diagnostics.
    // * Fault-plan firing points — resource-denial faults are re-drawn
    //   per attempt, not scheduled; `fault_retry` forces cycle-by-cycle
    //   stepping whenever such a plan is active, because any retry can
    //   clear the denial.
    //
    // The watchdog deadline is likewise not an event: it is a bound
    // checked after every jump, so a skip landing past it converts into
    // the typed watchdog error exactly as cycle-by-cycle stepping would.

    /// Earliest in-flight completion in the ROB after `now`.
    fn rob_next_event(&self) -> Option<Cycle> {
        let mut t = None;
        for e in &self.rob {
            if let EState::Exec(d) = e.state {
                if d > self.now && t.is_none_or(|b| d < b) {
                    t = Some(d);
                }
            }
        }
        t
    }

    /// Earliest posted-flush visibility or pcommit acknowledgement
    /// after `now`.
    fn pending_next_event(&self) -> Option<Cycle> {
        match (
            self.pending_flushes.next_after(self.now),
            self.pending_pcommits.next_after(self.now),
        ) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Next cycle the store-buffer drain port frees up, if it has work.
    fn store_buffer_next_event(&self) -> Option<Cycle> {
        (!self.store_buffer.is_empty() && self.sb_busy > self.now).then_some(self.sb_busy)
    }

    /// Earliest SP-side event: a commit gate opening, the SSB drain
    /// port freeing up, or a drained writeback becoming visible.
    fn sp_next_event(&self) -> Option<Cycle> {
        let sp = self.sp.as_ref()?;
        let mut t = None;
        let mut fold = |c: Cycle| {
            if c > self.now && t.is_none_or(|b| c < b) {
                t = Some(c);
            }
        };
        for g in &sp.gates {
            if let Some(r) = g.ready_at {
                fold(r);
            }
        }
        // The drain port is a wake source not only while the SSB holds
        // entries but also when a commit gate waits on the drain to
        // finish: the port's busy cycle outlives the last entry by one,
        // and a `needs_prior_drain` gate blocked on it would otherwise
        // wedge with an empty SSB and nothing else scheduled (seen on
        // post-rollback re-execution, where the re-entered epoch's gate
        // opens immediately and only the stale drain holds its commit).
        if !sp.ssb.is_empty() || sp.gates.front().is_some_and(|g| g.needs_prior_drain) {
            fold(sp.drain_busy);
        }
        fold(sp.drain_visible_frontier);
        t
    }

    /// The next cycle at which anything is scheduled to happen, or
    /// `None` when the pipeline is wedged (no progress possible, ever).
    fn next_event_time(&self) -> Option<Cycle> {
        [
            self.rob_next_event(),
            self.pending_next_event(),
            self.store_buffer_next_event(),
            self.sp_next_event(),
        ]
        .into_iter()
        .flatten()
        .min()
    }
}

/// Why retirement stopped this cycle (stall attribution).
#[derive(Debug, Default, Clone, Copy)]
struct RetireBlock {
    progressed: bool,
    fence: bool,
    ssb_full: bool,
    checkpoint: bool,
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    //! Regression pin for the DESIGN §7 bloom-reset invariant: the
    //! filter resets only once the post-exit drain finishes, so a store
    //! still buffered in the SSB can never lose its filter bits (which
    //! would be a false negative — a missed store-to-load forward).

    use super::*;

    fn barrier_trace(n: u64) -> Vec<Event> {
        let mut ev = Vec::new();
        for i in 0..n {
            let a = PAddr::new(4096 + i * 64);
            ev.push(Event::Store {
                addr: a,
                size: 8,
                value: i,
            });
            ev.push(Event::Clwb { addr: a });
            ev.push(Event::Sfence);
            ev.push(Event::Pcommit);
            ev.push(Event::Sfence);
            // Several stores in the fence shadow keep the SSB occupied
            // across epoch boundaries, so the post-exit drain spans
            // multiple cycles (the window the invariant is about).
            for j in 0..4 {
                let b = PAddr::new(1 << 20 | (4096 + (i * 4 + j) * 64));
                ev.push(Event::Store {
                    addr: b,
                    size: 8,
                    value: i,
                });
            }
            ev.push(Event::Compute(40));
        }
        ev
    }

    /// Every store currently buffered in the SSB must still be
    /// bloom-positive; otherwise a load could skip the CAM search and
    /// miss a forward.
    fn assert_no_false_negatives(p: &Pipeline<'_>) {
        let sp = p.sp.as_ref().expect("SP enabled");
        for e in sp.ssb.iter() {
            if let SsbOp::Store { addr } = e.op {
                assert!(
                    sp.bloom.contains(addr),
                    "cycle {}: buffered SSB store {addr} lost its bloom bits",
                    p.now
                );
            }
        }
    }

    #[test]
    fn bloom_bits_survive_until_post_exit_drain_finishes() {
        let t = barrier_trace(40);
        let mut p = Pipeline::new(&t, CpuConfig::with_sp());
        let mut mid_drain_windows = 0u64;
        while !p.is_done() {
            p.step().unwrap();
            assert_no_false_negatives(&p);
            let sp = p.sp.as_ref().expect("SP enabled");
            // The dangerous window: speculation has ended but entries
            // are still draining. A premature reset here is exactly
            // what the invariant forbids.
            if !sp.speculating && !sp.ssb.is_empty() {
                mid_drain_windows += 1;
                assert!(
                    sp.bloom_dirty,
                    "cycle {}: filter reset while {} SSB entries were still draining",
                    p.now,
                    sp.ssb.len()
                );
            }
        }
        assert!(
            mid_drain_windows > 0,
            "trace never exercised a post-exit drain window; the test is vacuous"
        );
        let sp = p.sp.as_ref().expect("SP enabled");
        assert!(sp.ssb.is_empty());
        assert!(
            !sp.bloom_dirty,
            "drained pipeline must end with a clean filter"
        );
        assert!(
            p.result().bloom.resets > 0,
            "speculation exits must actually reset the filter"
        );
    }

    #[test]
    fn rollback_keeps_surviving_entries_bloom_positive() {
        // A coherence-triggered rollback flushes the squashed epochs'
        // entries but spares committed, still-draining ones — and must
        // not reset the filter while any survivor is buffered.
        let t = barrier_trace(40);
        let mut p = Pipeline::new(&t, CpuConfig::with_sp());
        let mut rollbacks = 0u64;
        for i in 0.. {
            if p.is_done() {
                break;
            }
            p.step().unwrap();
            assert_no_false_negatives(&p);
            if i % 7 == 0 {
                // Snoop a block a speculative store may have touched.
                let addr = PAddr::new(1 << 20 | (4096 + (i / 7 % 40) * 64));
                let (clears_before, oldest_before) = {
                    let sp = p.sp.as_ref().expect("SP enabled");
                    (sp.blt.stats().clears, sp.epochs.oldest().map(|e| e.id))
                };
                if p.inject_coherence(addr.block()) {
                    rollbacks += 1;
                    assert_no_false_negatives(&p);
                    // Clear accounting must stay consistent across the
                    // rollback: exactly one counted BLT flash-clear,
                    // an empty table, no live speculation, and every
                    // SSB survivor tagged with an epoch older than the
                    // squashed range (flush_from removed the rest).
                    let sp = p.sp.as_ref().expect("SP enabled");
                    assert!(sp.blt.is_empty(), "BLT not flash-cleared by rollback");
                    assert_eq!(
                        sp.blt.stats().clears,
                        clears_before + 1,
                        "rollback must count exactly one BLT clear"
                    );
                    assert!(!sp.epochs.speculating());
                    let squashed_from = oldest_before.expect("rollback implies a live epoch");
                    for e in sp.ssb.iter() {
                        assert!(
                            e.epoch < squashed_from,
                            "cycle {}: SSB entry from squashed epoch {} survived rollback",
                            p.now,
                            e.epoch
                        );
                    }
                }
            }
        }
        assert!(rollbacks > 0, "no rollback triggered; the test is vacuous");
        let r = p.result();
        assert_eq!(
            r.blt.conflicts, rollbacks,
            "each rollback is one BLT conflict"
        );
        assert!(
            r.blt.clears >= rollbacks,
            "every rollback flash-clears the BLT; clean exits add more"
        );
    }

    // ---- fault injection & forward progress -----------------------------

    use spp_mem::{FaultSpec, MemConfig};

    fn simulate(events: &[Event], cfg: &CpuConfig) -> SimResult {
        crate::Simulator::new(events).config(*cfg).run().unwrap()
    }

    fn with_plan(base: CpuConfig, plan: FaultSpec) -> CpuConfig {
        CpuConfig {
            mem: MemConfig {
                fault: Some(plan),
                ..base.mem
            },
            ..base
        }
    }

    fn committed_classes(r: &SimResult) -> [u64; 6] {
        [
            r.cpu.committed_uops,
            r.cpu.loads,
            r.cpu.stores,
            r.cpu.flushes,
            r.cpu.pcommits,
            r.cpu.fences,
        ]
    }

    /// The faultsim invariant at pipeline granularity: timing faults may
    /// move cycle counts but never the committed architectural work.
    #[test]
    fn timing_faults_never_change_committed_work() {
        let t = barrier_trace(30);
        for base in [CpuConfig::baseline(), CpuConfig::with_sp()] {
            let clean = Pipeline::new(&t, base).try_run().unwrap();
            for plan in [FaultSpec::quiet(3), FaultSpec::storm(3)] {
                let faulty = Pipeline::new(&t, with_plan(base, plan)).try_run().unwrap();
                assert_eq!(
                    committed_classes(&clean),
                    committed_classes(&faulty),
                    "plan {plan:?} changed architectural work (sp={})",
                    base.sp.is_some()
                );
            }
        }
    }

    #[test]
    fn storm_plan_actually_injects_and_costs_cycles() {
        let t = barrier_trace(30);
        let clean = Pipeline::new(&t, CpuConfig::with_sp()).try_run().unwrap();
        let faulty = Pipeline::new(&t, with_plan(CpuConfig::with_sp(), FaultSpec::storm(3)))
            .try_run()
            .unwrap();
        assert!(faulty.faults.total() > 0, "storm must fire");
        assert_eq!(clean.faults.total(), 0);
        assert!(
            faulty.cpu.cycles > clean.cpu.cycles,
            "storm faults must cost cycles ({} vs {})",
            faulty.cpu.cycles,
            clean.cpu.cycles
        );
    }

    /// Satellite regression: an sfence arriving while all four
    /// checkpoint-buffer entries are live must stall the ROB head
    /// cleanly (attributed to the checkpoint buffer) and resume once a
    /// predecessor commits — constructed directly rather than hoping a
    /// trace reaches the state.
    #[test]
    fn sfence_with_full_checkpoint_buffer_stalls_cleanly() {
        let t = vec![Event::Sfence, Event::Compute(8)];
        let mut p = Pipeline::new(&t, CpuConfig::with_sp());
        {
            let sp = p.sp.as_mut().unwrap();
            for i in 0..4u64 {
                let id = sp.epochs.begin(0, 0).unwrap();
                sp.gates.push_back(Gate {
                    epoch: id,
                    ready_at: Some(1_000 + i * 500),
                    needs_prior_drain: false,
                });
                sp.retired_per_epoch
                    .push_back((id, EpochRetired::default()));
            }
            assert!(!sp.epochs.can_begin(), "all four checkpoints are live");
            sp.speculating = true;
        }
        while !p.is_done() {
            p.step().unwrap();
        }
        let r = p.result();
        assert!(
            r.cpu.checkpoint_stall_cycles > 0,
            "the head fence must attribute its stall to the checkpoint buffer"
        );
        assert_eq!(r.cpu.fences, 1);
        assert_eq!(r.cpu.committed_uops, 9);
    }

    /// Satellite regression: a constructed livelock — the core is
    /// mid-speculation with its only epoch gated on a combined-barrier
    /// pcommit that will never issue, and the wedge plan denies the head
    /// fence's checkpoint on every retry — must be converted by the
    /// watchdog into a typed error with a populated snapshot, not a
    /// hang.
    #[test]
    fn watchdog_converts_wedged_pipeline_into_typed_error() {
        let t = vec![Event::Sfence, Event::Compute(8)];
        let cfg = CpuConfig {
            watchdog_cycles: 5_000,
            ..with_plan(CpuConfig::with_sp(), FaultSpec::wedge(1))
        };
        let mut p = Pipeline::new(&t, cfg);
        {
            let sp = p.sp.as_mut().unwrap();
            let id = sp.epochs.begin(0, 0).unwrap();
            sp.gates.push_back(Gate {
                epoch: id,
                ready_at: None,
                needs_prior_drain: false,
            });
            sp.retired_per_epoch
                .push_back((id, EpochRetired::default()));
            sp.speculating = true;
        }
        let err = loop {
            match p.step() {
                Ok(()) => assert!(!p.is_done(), "livelock fixture must not finish"),
                Err(e) => break e,
            }
        };
        assert_eq!(
            err.kind,
            crate::SimErrorKind::NoRetireProgress { bound: 5_000 }
        );
        let s = &err.snapshot;
        assert!(s.cycle > 5_000);
        assert!(s.rob_head.is_some(), "the stuck uop must be identified");
        assert!(s.speculating);
        assert_eq!(s.checkpoints_live, 1);
        assert_eq!(s.checkpoint_capacity, 4);
        let msg = err.to_string();
        assert!(msg.contains("no retirement progress"), "got: {msg}");
        assert!(msg.contains("checkpoints"), "got: {msg}");
    }

    /// Satellite: SSB overflow under injected pressure (a tiny SSB plus
    /// a plan that holds most slots) still commits exactly the fault-free
    /// architectural work.
    #[test]
    fn ssb_overflow_under_fault_pressure_keeps_committed_work_identical() {
        let t = barrier_trace(30);
        let small = CpuConfig {
            sp: Some(SpConfig::with_ssb_entries(32)),
            ..CpuConfig::baseline()
        };
        let clean = Pipeline::new(&t, small).try_run().unwrap();
        let plan = FaultSpec {
            ssb_pressure_pm: 300,
            ssb_held_slots: 28,
            ..FaultSpec::none(11)
        };
        let faulty = Pipeline::new(&t, with_plan(small, plan)).try_run().unwrap();
        assert_eq!(committed_classes(&clean), committed_classes(&faulty));
        assert!(faulty.faults.ssb_pressure > 0, "pressure must fire");
    }

    /// Satellite: a rollback landing while ack-delay faults hold the
    /// drain mid-epoch must stay sound — no bloom false negatives, and
    /// the same committed work as a fault-free run (extends the PR 2
    /// bloom-reset soundness tests).
    #[test]
    fn rollback_with_fault_delayed_drain_stays_sound() {
        let t = barrier_trace(40);
        let plan = FaultSpec {
            ack_delay_pm: 400,
            ack_delay_max: 3_000,
            ..FaultSpec::none(13)
        };
        let mut p = Pipeline::new(&t, with_plan(CpuConfig::with_sp(), plan));
        let mut rolled = false;
        for i in 0.. {
            if p.is_done() {
                break;
            }
            p.step().unwrap();
            assert_no_false_negatives(&p);
            if i % 7 == 0 {
                let addr = PAddr::new(1 << 20 | (4096 + (i / 7 % 40) * 64));
                if p.inject_coherence(addr.block()) {
                    rolled = true;
                    assert_no_false_negatives(&p);
                }
            }
        }
        assert!(rolled, "no rollback triggered; the test is vacuous");
        let r = p.result();
        assert!(r.faults.ack_delays > 0, "the plan must actually delay acks");
        let clean = simulate(&t, &CpuConfig::with_sp());
        assert_eq!(r.cpu.committed_uops, clean.cpu.committed_uops);
    }

    /// Identical plans and traces give identical results — the
    /// `--jobs`-invariance precondition at the pipeline level.
    #[test]
    fn faulted_runs_are_deterministic() {
        let t = barrier_trace(20);
        let cfg = with_plan(CpuConfig::with_sp(), FaultSpec::storm(42));
        let a = Pipeline::new(&t, cfg).try_run().unwrap();
        let b = Pipeline::new(&t, cfg).try_run().unwrap();
        assert_eq!(a.cpu.cycles, b.cpu.cycles);
        assert_eq!(a.faults, b.faults);
        assert_eq!(committed_classes(&a), committed_classes(&b));
    }
}
