//! The persist-visibility log: what the memory system actually saw.
//!
//! `CrashSim` reasons about a *program-order* event trace, but a
//! pipeline — especially one retiring speculatively — presents stores,
//! writebacks, and barriers to the memory system in a different order:
//! stores drain from the post-retirement store buffer, in-shadow PMEM
//! instructions are delayed into the SSB and replayed at epoch commit,
//! and `sfence;pcommit;sfence` sequences collapse into one combined
//! drain opcode. The litmus harness needs to crash-test *that* order.
//!
//! When enabled (`Pipeline::enable_persist_log` /
//! `ReferencePipeline::enable_persist_log`), the pipeline records one
//! [`VisEvent`] at each point a persist-relevant effect becomes visible
//! to the memory system:
//!
//! * a store draining from the store buffer or the SSB;
//! * a flush writeback posting (non-speculative retire, legacy
//!   `clflush` issue, or SSB drain replay);
//! * a `pcommit` issuing to the memory controller;
//! * a fence's ordering guarantee being realized — at non-speculative
//!   fence retirement, or at the commit of the speculative epoch the
//!   fence opened (each epoch corresponds to exactly one program
//!   fence). The combined `sfence;pcommit;sfence` drain additionally
//!   logs its leading fence at pcommit issue: the drain really does
//!   order all older writebacks first (it waits on the drain-visibility
//!   frontier), so the extra ordering edge is honest — it can only
//!   *shrink* the reachable post-crash state set, never widen it.
//!
//! Logging is pure recording: it never changes timing or architectural
//! state (the cycle-equivalence and probe-neutrality suites pin this).
//! [`reconstruct`] then rebuilds a `CrashSim`-ready event sequence in
//! visibility order, mapping stores and flushes back to their source
//! trace events via `trace_idx`.

use spp_mem::Cycle;
use spp_pmem::Event;

/// One persist-relevant effect becoming visible to the memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VisEvent {
    /// Cycle the effect became visible.
    pub at: Cycle,
    /// What became visible.
    pub op: VisOp,
}

/// The kind of a [`VisEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VisOp {
    /// A store's data reached the coherent domain. `trace_idx` points at
    /// the source `Event::Store` (address, size, value).
    Store {
        /// Index of the source event in the simulated trace.
        trace_idx: usize,
    },
    /// A flush's writeback posted. `trace_idx` points at the source
    /// `Event::Clwb` / `Event::ClflushOpt` / `Event::Clflush`, which
    /// also determines its ordering strength.
    Flush {
        /// Index of the source event in the simulated trace.
        trace_idx: usize,
    },
    /// A `pcommit` issued to the memory controller.
    Pcommit,
    /// A fence's ordering guarantee was realized.
    Fence,
}

/// Rebuilds a `CrashSim`-ready event sequence from a persist-visibility
/// log: entries are ordered by visibility time (ties keep the recorded
/// order, which follows the machine's same-cycle processing order), and
/// each is mapped back to a concrete [`Event`].
///
/// # Panics
///
/// Panics if a logged `trace_idx` does not point at an event of the
/// expected kind — that would mean the logging hooks mis-attributed an
/// effect, which the litmus harness must not paper over.
pub fn reconstruct(events: &[Event], log: &[VisEvent]) -> Vec<Event> {
    let mut ordered: Vec<(usize, VisEvent)> = log.iter().copied().enumerate().collect();
    ordered.sort_by_key(|&(pos, e)| (e.at, pos));
    ordered
        .into_iter()
        .map(|(_, e)| match e.op {
            VisOp::Store { trace_idx } => match events[trace_idx] {
                ev @ Event::Store { .. } => ev,
                ref other => panic!("visibility log store points at {other:?}"),
            },
            VisOp::Flush { trace_idx } => match events[trace_idx] {
                ev @ (Event::Clwb { .. } | Event::ClflushOpt { .. } | Event::Clflush { .. }) => ev,
                ref other => panic!("visibility log flush points at {other:?}"),
            },
            VisOp::Pcommit => Event::Pcommit,
            VisOp::Fence => Event::Sfence,
        })
        .collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use spp_pmem::PAddr;

    #[test]
    fn reconstruct_orders_by_time_then_log_position() {
        let a = PAddr::new(4096);
        let events = vec![
            Event::Store {
                addr: a,
                size: 8,
                value: 7,
            },
            Event::Clwb { addr: a },
            Event::Sfence,
        ];
        let log = vec![
            VisEvent {
                at: 10,
                op: VisOp::Fence,
            },
            VisEvent {
                at: 3,
                op: VisOp::Store { trace_idx: 0 },
            },
            VisEvent {
                at: 3,
                op: VisOp::Flush { trace_idx: 1 },
            },
        ];
        let rebuilt = reconstruct(&events, &log);
        assert_eq!(
            rebuilt,
            vec![
                Event::Store {
                    addr: a,
                    size: 8,
                    value: 7
                },
                Event::Clwb { addr: a },
                Event::Sfence,
            ]
        );
    }

    #[test]
    #[should_panic(expected = "visibility log store points at")]
    fn reconstruct_rejects_misattributed_indices() {
        let events = vec![Event::Sfence];
        let log = vec![VisEvent {
            at: 0,
            op: VisOp::Store { trace_idx: 0 },
        }];
        let _ = reconstruct(&events, &log);
    }
}
