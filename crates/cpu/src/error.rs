//! Typed simulation errors and the forward-progress watchdog snapshot.
//!
//! A wedged or internally inconsistent pipeline must surface as a value
//! the caller can inspect — never as a hang or a panic backtrace. Every
//! [`SimError`] carries a [`DiagnosticSnapshot`] of the machine state at
//! the moment of failure: what sat at the ROB head, how full each
//! speculative structure was, and how deep the memory controller's
//! write-pending queue ran.

use std::fmt;

use spp_mem::{Cycle, MemConfigError};

use crate::uop::Uop;

/// Why a simulation could not continue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimErrorKind {
    /// The configuration was rejected before the first cycle (the
    /// [`crate::Simulator`] builder validates up front rather than
    /// letting a degenerate machine wedge mid-run).
    InvalidConfig {
        /// What the memory-system validation rejected.
        error: MemConfigError,
    },
    /// The forward-progress watchdog fired: no micro-op retired for more
    /// than `bound` cycles while the pipeline still held work.
    NoRetireProgress {
        /// The configured no-retire bound
        /// ([`crate::CpuConfig::watchdog_cycles`]).
        bound: Cycle,
    },
    /// The pipeline made no progress this cycle and no future event is
    /// scheduled anywhere: a true deadlock.
    NoFutureEvent,
    /// A multi-core rollback storm: coherence conflicts kept rolling a
    /// core back to the same trace position, and the forward-progress
    /// budget of `bound` consecutive no-progress rollbacks ran out (see
    /// [`crate::MultiCore::with_storm_bound`]). Without this detector a
    /// pathological sharing pattern livelocks: every re-execution
    /// re-touches the contended block and is rolled back again.
    ConflictStorm {
        /// The configured consecutive-no-progress-rollback budget.
        bound: u64,
    },
    /// An internal pipeline invariant broke (a state that should be
    /// unreachable); `what` names the violated assumption.
    BrokenInvariant {
        /// The violated assumption.
        what: &'static str,
    },
}

/// Machine state captured when a [`SimError`] is raised.
#[derive(Debug, Clone, Default)]
pub struct DiagnosticSnapshot {
    /// Simulated cycle of the failure.
    pub cycle: Cycle,
    /// Micro-op at the ROB head (usually the one that cannot retire).
    pub rob_head: Option<Uop>,
    /// Occupied ROB entries.
    pub rob_len: usize,
    /// Occupied fetch-queue entries.
    pub fetchq_len: usize,
    /// Occupied post-retirement store-buffer entries.
    pub store_buffer_len: usize,
    /// Occupied LSQ slots.
    pub lsq_used: usize,
    /// Posted flushes not yet globally visible.
    pub pending_flushes: usize,
    /// Posted pcommits not yet acknowledged.
    pub pending_pcommits: usize,
    /// Was the core retiring speculatively?
    pub speculating: bool,
    /// Total SSB entries buffered.
    pub ssb_len: usize,
    /// SSB occupancy per epoch, front (oldest) first.
    pub ssb_per_epoch: Vec<(u64, usize)>,
    /// Live checkpoint-buffer entries.
    pub checkpoints_live: usize,
    /// Checkpoint-buffer capacity (0 when SP is disabled).
    pub checkpoint_capacity: usize,
    /// Write-pending-queue occupancy at the memory controller.
    pub wpq_depth: usize,
    /// The controller's next-event report: earliest in-flight WPQ
    /// completion after `cycle`, if any (`None` when the queue is
    /// drained — a wedged run with work but no such event points at the
    /// pipeline side).
    pub wpq_next_drain: Option<Cycle>,
    /// Had the trace cursor reached the end of the trace?
    pub trace_done: bool,
}

impl DiagnosticSnapshot {
    /// The snapshot as one flat JSON object (stable key order, no
    /// external dependency): the machine-readable form that failure
    /// records in journalled reports carry, so a degraded cell still
    /// ships the full machine state for post-mortem without parsing a
    /// display string.
    pub fn to_json(&self) -> String {
        let per_epoch: Vec<String> = self
            .ssb_per_epoch
            .iter()
            .map(|(e, n)| format!("[{e},{n}]"))
            .collect();
        format!(
            "{{\"cycle\":{},\"rob_head\":\"{:?}\",\"rob_len\":{},\"fetchq_len\":{},\
             \"lsq_used\":{},\"store_buffer_len\":{},\"pending_flushes\":{},\
             \"pending_pcommits\":{},\"speculating\":{},\"ssb_len\":{},\
             \"ssb_per_epoch\":[{}],\"checkpoints_live\":{},\"checkpoint_capacity\":{},\
             \"wpq_depth\":{},\"wpq_next_drain\":{},\"trace_done\":{}}}",
            self.cycle,
            self.rob_head.map(|u| u.kind),
            self.rob_len,
            self.fetchq_len,
            self.lsq_used,
            self.store_buffer_len,
            self.pending_flushes,
            self.pending_pcommits,
            self.speculating,
            self.ssb_len,
            per_epoch.join(","),
            self.checkpoints_live,
            self.checkpoint_capacity,
            self.wpq_depth,
            self.wpq_next_drain
                .map_or_else(|| "null".to_string(), |t| t.to_string()),
            self.trace_done,
        )
    }
}

impl fmt::Display for DiagnosticSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cycle {}: rob {} (head {:?}), fetchq {}, lsq {}, store buffer {}, \
             pending flushes/pcommits {}/{}, speculating {}, ssb {} {:?}, \
             checkpoints {}/{}, wpq {} (next drain {:?}), trace done {}",
            self.cycle,
            self.rob_len,
            self.rob_head.map(|u| u.kind),
            self.fetchq_len,
            self.lsq_used,
            self.store_buffer_len,
            self.pending_flushes,
            self.pending_pcommits,
            self.speculating,
            self.ssb_len,
            self.ssb_per_epoch,
            self.checkpoints_live,
            self.checkpoint_capacity,
            self.wpq_depth,
            self.wpq_next_drain,
            self.trace_done,
        )
    }
}

/// A simulation failure: what went wrong plus the machine state when it
/// did.
#[derive(Debug, Clone)]
pub struct SimError {
    /// The failure class.
    pub kind: SimErrorKind,
    /// Machine state at the failure (boxed to keep `Result` small on
    /// the simulation hot path).
    pub snapshot: Box<DiagnosticSnapshot>,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            SimErrorKind::InvalidConfig { error } => {
                return write!(f, "invalid configuration: {error}");
            }
            SimErrorKind::NoRetireProgress { bound } => {
                write!(f, "no retirement progress within {bound} cycles (watchdog)")?;
            }
            SimErrorKind::NoFutureEvent => {
                f.write_str("pipeline deadlock: no progress and no scheduled event")?;
            }
            SimErrorKind::ConflictStorm { bound } => {
                write!(
                    f,
                    "coherence conflict storm: {bound} consecutive rollbacks without progress"
                )?;
            }
            SimErrorKind::BrokenInvariant { what } => {
                write!(f, "broken pipeline invariant: {what}")?;
            }
        }
        write!(f, " [{}]", self.snapshot)
    }
}

impl SimError {
    /// The error as one JSON object: a `kind` string plus the full
    /// [`DiagnosticSnapshot::to_json`] under `snapshot`.
    pub fn to_json(&self) -> String {
        let kind = match self.kind {
            SimErrorKind::InvalidConfig { error } => format!("invalid_config:{error}"),
            SimErrorKind::NoRetireProgress { bound } => format!("no_retire_progress:{bound}"),
            SimErrorKind::NoFutureEvent => "no_future_event".to_string(),
            SimErrorKind::ConflictStorm { bound } => format!("conflict_storm:{bound}"),
            SimErrorKind::BrokenInvariant { what } => format!("broken_invariant:{what}"),
        };
        format!(
            "{{\"kind\":\"{kind}\",\"snapshot\":{}}}",
            self.snapshot.to_json()
        )
    }
}

impl std::error::Error for SimError {}
