//! A failure-safe key-value store on simulated NVMM.
//!
//! Builds a small application on the public API: a KV store backed by
//! the persistent hash map, with every update wrapped in a write-ahead
//! logging transaction. Demonstrates the persistence cost ladder the
//! paper measures, then proves failure safety by crashing the store and
//! recovering.
//!
//! ```text
//! cargo run --release --example kv_store
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use specpersist::cpu::{CpuConfig, Simulator};
use specpersist::pmem::{recover, CrashSim, PmemEnv, Variant};
use specpersist::workloads::{
    make_workload, run_benchmark, BenchId, BenchSpec, OpOutcome, RunConfig,
};

fn main() {
    println!("A persistent KV store with WAL transactions\n");

    // --- Part 1: the persistence cost ladder ---------------------------
    // run_benchmark embeds each operation in its application context
    // (driver work), exactly as the harness does for the paper figures.
    let spec = BenchSpec {
        id: BenchId::HashMap,
        init_ops: 30_000,
        sim_ops: 150,
    };
    let mut base_cycles = 0u64;
    for variant in Variant::ALL {
        let out = run_benchmark(&RunConfig {
            variant,
            spec,
            seed: 7,
            capture_base: false,
        });
        let plain = Simulator::new(&out.trace.events)
            .config(CpuConfig::baseline())
            .run()
            .expect("sound config");
        let sp = Simulator::new(&out.trace.events)
            .config(CpuConfig::with_sp())
            .run()
            .expect("sound config");
        if variant == Variant::Base {
            base_cycles = plain.cpu.cycles;
        }
        println!(
            "{:<10} {:>7} cycles/op baseline core ({:+5.1}% vs Base)   {:>7} cycles/op with SP",
            variant.label(),
            plain.cpu.cycles / spec.sim_ops,
            (plain.cpu.cycles as f64 / base_cycles as f64 - 1.0) * 100.0,
            sp.cpu.cycles / spec.sim_ops,
        );
    }

    // --- Part 2: crash it, recover it, verify it ----------------------
    println!("\nCrash-recovery demonstration (Log+P+Sf build):");
    let mut env = PmemEnv::new(Variant::LogPSf);
    let mut rng = StdRng::seed_from_u64(7);
    let mut store = make_workload(BenchId::HashMap);
    env.set_recording(false);
    store.setup(&mut env, &mut rng, 500);
    env.set_recording(true);
    let base_image = env.snapshot();
    let keys_before = store.verify(env.space()).expect("valid store").keys.len();

    let mut outcomes = Vec::new();
    for op in 0..20 {
        outcomes.push(store.run_op(&mut env, &mut rng, op));
    }
    let trace = env.take_trace();
    let layout = env.log_layout();

    // Probe crash points until we have shown both cases: a crash with
    // no transaction in flight, and one mid-transaction that recovery
    // has to undo.
    let mut shown = (false, false);
    for i in 1..trace.events.len() {
        let crash = trace.events.len() * i / 40;
        if crash >= trace.events.len() {
            break;
        }
        let sim = CrashSim::new(&base_image, &trace.events, crash);
        let mut image = sim.image_guaranteed_only();
        let report = recover(&mut image, &layout);
        let recovered = store.verify(&image).expect("recovered store is valid");
        let fresh = match (report.tx_in_flight, shown) {
            (false, (false, _)) => {
                shown.0 = true;
                true
            }
            (true, (_, false)) => {
                shown.1 = true;
                true
            }
            _ => false,
        };
        if fresh {
            println!(
                "  crash at event {:>6}: tx in flight = {:<5} undo entries applied = {:<3} \
                 keys = {} (started with {})",
                crash,
                report.tx_in_flight,
                report.entries_applied,
                recovered.keys.len(),
                keys_before,
            );
        }
        if shown == (true, true) {
            break;
        }
    }

    let inserted = outcomes
        .iter()
        .filter(|o| matches!(o, OpOutcome::Inserted(_)))
        .count();
    let deleted = outcomes
        .iter()
        .filter(|o| matches!(o, OpOutcome::Deleted(_)))
        .count();
    println!("\n(the 20 live operations inserted {inserted} keys and deleted {deleted})");
    println!("Every recovered image passed full structural verification.");
}
