//! Coherence-conflict stress: exercise the BLT abort path.
//!
//! SP must not expose speculative state to other cores (§4.2.2): the
//! Block Lookup Table records every block speculation touches, and an
//! external coherence request that hits it triggers an abort and a
//! rollback to the oldest checkpoint. The paper leaves multi-threaded
//! workloads to future work but requires this safety net; here a
//! synthetic second agent snoops random workload blocks at increasing
//! rates while the linked-list benchmark runs, and we watch the
//! rollback machinery pay for itself.
//!
//! ```text
//! cargo run --release --example coherence_stress
//! ```

use specpersist::cpu::{CpuConfig, Pipeline};
use specpersist::pmem::{Event, Variant};
use specpersist::workloads::{run_benchmark, BenchId, BenchSpec, RunConfig};

fn main() {
    println!("Coherence-conflict stress on the linked-list benchmark\n");

    let out = run_benchmark(&RunConfig {
        variant: Variant::LogPSf,
        spec: BenchSpec {
            id: BenchId::LinkedList,
            init_ops: 500,
            sim_ops: 300,
        },
        seed: 99,
        capture_base: false,
    });
    // Candidate snoop targets: blocks the workload actually stores to.
    let targets: Vec<_> = out
        .trace
        .events
        .iter()
        .filter_map(|e| match e {
            Event::Store { addr, .. } => Some(addr.block()),
            _ => None,
        })
        .collect();
    let expected_uops = out.trace.counts.total();

    println!(
        "{:>14} {:>10} {:>10} {:>12} {:>10} {:>12}",
        "snoop period", "snoops", "conflicts", "rollbacks", "squashed", "cycles"
    );
    for period in [0usize, 5000, 1000, 200, 50] {
        let mut p = Pipeline::new(&out.trace.events, CpuConfig::with_sp());
        let mut steps = 0usize;
        let mut snoops = 0u64;
        let mut i = 0usize;
        while !p.is_done() {
            p.step().unwrap();
            steps += 1;
            if period > 0 && steps.is_multiple_of(period) {
                i = (i + 131) % targets.len();
                p.inject_coherence(targets[i]);
                snoops += 1;
            }
        }
        let r = p.result();
        assert_eq!(
            r.cpu.committed_uops, expected_uops,
            "rollbacks must never lose or duplicate work"
        );
        println!(
            "{:>14} {:>10} {:>10} {:>12} {:>10} {:>12}",
            if period == 0 {
                "none".to_string()
            } else {
                format!("1/{period}")
            },
            snoops,
            r.blt.conflicts,
            r.cpu.rollbacks,
            r.cpu.squashed_uops,
            r.cpu.cycles
        );
    }
    println!(
        "\nEvery configuration committed exactly {expected_uops} micro-ops — rollbacks\n\
         re-execute from the oldest checkpoint without losing or duplicating work.\n\
         Conflicts stay rare even under heavy snooping because speculation windows\n\
         are short; the paper relies on exactly this (\"rollback can be expected to\n\
         be extremely rare\")."
    );
}
