//! Quickstart: record a persistent-workload trace, time it with and
//! without speculative persistence, and print the headline comparison.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use specpersist::cpu::{CpuConfig, Simulator};
use specpersist::pmem::Variant;
use specpersist::workloads::{run_benchmark, BenchId, BenchSpec, RunConfig};

fn main() {
    println!("specpersist quickstart: the linked-list benchmark (LL)\n");

    // 1. Record the benchmark in each build variant (Fig. 8's bars).
    //    Identical seeds give identical operation streams.
    let spec = BenchSpec {
        id: BenchId::LinkedList,
        init_ops: 500,
        sim_ops: 200,
    };
    let mut cycles = Vec::new();
    for variant in Variant::ALL {
        let out = run_benchmark(&RunConfig {
            variant,
            spec,
            seed: 42,
            capture_base: false,
        });
        let sim = Simulator::new(&out.trace.events)
            .config(CpuConfig::baseline())
            .run()
            .expect("sound config");
        println!(
            "{:<10} {:>9} uops  {:>9} cycles  ({} pcommits, {} sfences)",
            variant.label(),
            out.trace.counts.total(),
            sim.cpu.cycles,
            out.trace.counts.pcommits,
            out.trace.counts.fences,
        );
        cycles.push((variant, out, sim));
    }

    // 2. Replay the failure-safe build on the speculative-persistence
    //    core: the sfence stalls vanish.
    let (_, logpsf_out, logpsf_sim) = &cycles[3];
    let sp = Simulator::new(&logpsf_out.trace.events)
        .config(CpuConfig::with_sp())
        .run()
        .expect("sound config");
    println!(
        "{:<10} {:>9} uops  {:>9} cycles  ({} speculative epochs, {} SSB stores)",
        "SP256",
        logpsf_out.trace.counts.total(),
        sp.cpu.cycles,
        sp.cpu.epochs,
        sp.ssb.inserts,
    );

    let base = cycles[0].2.cpu.cycles as f64;
    println!("\nOverheads vs Base:");
    println!(
        "  Log+P+Sf : {:+.1}%",
        (logpsf_sim.cpu.cycles as f64 / base - 1.0) * 100.0
    );
    println!(
        "  SP256    : {:+.1}%",
        (sp.cpu.cycles as f64 / base - 1.0) * 100.0
    );
    println!(
        "\nSpeculative persistence recovered {:.0}% of the fence overhead.",
        (logpsf_sim.cpu.cycles - sp.cpu.cycles) as f64
            / (logpsf_sim.cpu.cycles as f64 - cycles[2].2.cpu.cycles as f64)
            * 100.0
    );
}
