//! Building persistency models from the PMEM primitives (§2.1-§2.2).
//!
//! The paper notes that the PMEM instructions are "a more flexible
//! approach towards memory persistency: it allows programmers to
//! construct other persistency models such as strict and epoch
//! persistency". This example does exactly that for a simple persistent
//! append-log workload:
//!
//! * **strict persistency** — every store is individually made durable
//!   (`store; clwb; sfence; pcommit; sfence`), the simplest model to
//!   reason about and by far the slowest;
//! * **epoch persistency** — stores within an epoch (here: one record)
//!   persist together, one barrier per epoch;
//! * **transactional (WAL) persistency** — the paper's model: undo
//!   logging plus four barriers per transaction, the only one of the
//!   three that is also failure *atomic*.
//!
//! ```text
//! cargo run --release --example persistency_models
//! ```

use specpersist::cpu::{CpuConfig, Simulator};
use specpersist::pmem::{PmemEnv, Variant};

const RECORDS: u64 = 200;
const FIELDS: u64 = 6; // 8-byte fields per appended record

fn fresh_env() -> (PmemEnv, specpersist::pmem::PAddr) {
    let mut env = PmemEnv::new(Variant::LogPSf);
    let region = env.alloc_blocks(RECORDS); // one block per record
    env.set_recording(true);
    (env, region)
}

/// The application work between appends: a running checksum over a few
/// earlier records (dependent pointer-style reads plus compute) — the
/// execution speculative persistence overlaps with the barriers.
fn between_records(env: &mut PmemEnv, region: specpersist::pmem::PAddr, r: u64) {
    env.compute(96);
    let mut probe = r;
    for _ in 0..6 {
        probe = probe.wrapping_mul(0x9E37_79B9).wrapping_add(1) % (r + 1);
        let rec = region.offset((probe % RECORDS) * 64);
        let _ = env.load_ptr(rec); // dependent read of an earlier record
        env.compute(24);
    }
}

/// Strict persistency: persist after every store.
fn strict() -> specpersist::pmem::Trace {
    let (mut env, region) = fresh_env();
    for r in 0..RECORDS {
        let rec = region.offset(r * 64);
        for f in 0..FIELDS {
            env.store_u64(rec.offset(8 * f), r * 100 + f);
            env.clwb(rec);
            env.persist_barrier();
        }
        between_records(&mut env, region, r);
    }
    env.take_trace()
}

/// Epoch persistency: one persist barrier per record.
fn epoch() -> specpersist::pmem::Trace {
    let (mut env, region) = fresh_env();
    for r in 0..RECORDS {
        let rec = region.offset(r * 64);
        for f in 0..FIELDS {
            env.store_u64(rec.offset(8 * f), r * 100 + f);
        }
        env.clwb(rec);
        env.persist_barrier();
        between_records(&mut env, region, r);
    }
    env.take_trace()
}

/// Transactional persistency: the paper's WAL protocol (failure atomic).
fn transactional() -> specpersist::pmem::Trace {
    let (mut env, region) = fresh_env();
    for r in 0..RECORDS {
        let rec = region.offset(r * 64);
        env.tx_begin(r);
        env.tx_log(rec, 64);
        env.tx_set_logged();
        for f in 0..FIELDS {
            env.store_u64(rec.offset(8 * f), r * 100 + f);
        }
        env.clwb(rec);
        env.tx_commit();
        between_records(&mut env, region, r);
    }
    env.take_trace()
}

fn main() {
    println!("Persistency models built from the PMEM primitives (§2.1-§2.2)");
    println!("workload: append {RECORDS} records of {FIELDS} fields each\n");
    println!(
        "{:<16} {:>9} {:>9} {:>10} {:>12} {:>12}",
        "model", "pcommits", "sfences", "cycles", "cycles (SP)", "SP saves"
    );
    for (name, trace) in [
        ("strict", strict()),
        ("epoch", epoch()),
        ("transactional", transactional()),
    ] {
        let base = Simulator::new(&trace.events)
            .config(CpuConfig::baseline())
            .run()
            .expect("sound config");
        let sp = Simulator::new(&trace.events)
            .config(CpuConfig::with_sp())
            .run()
            .expect("sound config");
        println!(
            "{:<16} {:>9} {:>9} {:>10} {:>12} {:>11.0}%",
            name,
            trace.counts.pcommits,
            trace.counts.fences,
            base.cpu.cycles,
            sp.cpu.cycles,
            (1.0 - sp.cpu.cycles as f64 / base.cpu.cycles as f64) * 100.0
        );
    }
    println!(
        "\nStrict persistency orders every store and pays a barrier each time;\n\
         epoch persistency amortizes one barrier per record; the paper's\n\
         transactional model adds undo logging (and is the only failure-atomic\n\
         one). Speculative persistence overlaps the barriers with the program's\n\
         own work in every model — it is persistency-model agnostic, though a\n\
         model that leaves no work between barriers (strict) gives it little\n\
         to hide behind."
    );
}
