//! SSB design-space tuning: reproduce the Fig. 13 trade-off on one
//! benchmark and watch both failure modes — structural hazards when the
//! buffer is small, CAM latency when it is large.
//!
//! ```text
//! cargo run --release --example ssb_tuning
//! ```

use specpersist::core::SSB_DESIGN_POINTS;
use specpersist::cpu::{CpuConfig, Simulator, SpConfig};
use specpersist::pmem::Variant;
use specpersist::workloads::{run_benchmark, BenchId, BenchSpec, RunConfig};

fn main() {
    let id = BenchId::BTree;
    println!("SSB size sweep on {} (Table 3 design points)\n", id.name());

    let spec = BenchSpec::scaled(id, 200);
    let seed = 0x55B;
    let logpsf = run_benchmark(&RunConfig {
        variant: Variant::LogPSf,
        spec,
        seed,
        capture_base: false,
    });
    let base = run_benchmark(&RunConfig {
        variant: Variant::Base,
        spec,
        seed,
        capture_base: false,
    });
    let base_cycles = Simulator::new(&base.trace.events)
        .config(CpuConfig::baseline())
        .run()
        .expect("sound config")
        .cpu
        .cycles;
    let nosp = Simulator::new(&logpsf.trace.events)
        .config(CpuConfig::baseline())
        .run()
        .expect("sound config")
        .cpu
        .cycles;

    println!(
        "{:>8} {:>8} {:>12} {:>14} {:>12} {:>10}",
        "entries", "latency", "cycles", "overhead", "ssb-stalls", "fwd-hits"
    );
    for (entries, latency) in SSB_DESIGN_POINTS {
        let cfg = CpuConfig {
            sp: Some(SpConfig::with_ssb_entries(entries)),
            ..CpuConfig::baseline()
        };
        let r = Simulator::new(&logpsf.trace.events)
            .config(cfg)
            .run()
            .expect("sound config");
        println!(
            "{:>8} {:>8} {:>12} {:>13.1}% {:>12} {:>10}",
            entries,
            latency,
            r.cpu.cycles,
            (r.cpu.cycles as f64 / base_cycles as f64 - 1.0) * 100.0,
            r.cpu.ssb_full_stall_cycles,
            r.cpu.ssb_forwards,
        );
    }
    println!(
        "\nWithout speculation the same trace takes {} cycles ({:+.1}% over Base).",
        nosp,
        (nosp as f64 / base_cycles as f64 - 1.0) * 100.0
    );
    println!("Small buffers stall retirement (structural hazard); very large ones tax");
    println!("every bloom-positive load with a slower CAM — 128-256 entries is the knee.");
}
