//! Crash-torture: every benchmark, many crash points, adversarial
//! writebacks — recovery must always restore a consistent,
//! prefix-correct structure.
//!
//! This is the failure-safety claim of the paper's §3.1 exercised end
//! to end: crash the `Log+P+Sf` build at evenly spaced points in its
//! trace, materialize the worst-case NVMM image (only guaranteed
//! persists arrived), run recovery, and structurally verify the result.
//!
//! ```text
//! cargo run --release --example crash_torture
//! ```

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::SeedableRng;
use specpersist::pmem::{recover, CrashSim, PmemEnv, Variant};
use specpersist::workloads::{make_workload, BenchId, OpOutcome};

const CRASH_POINTS: usize = 40;
const OPS: u64 = 12;

fn main() {
    println!("Crash-torturing every benchmark ({CRASH_POINTS} crash points each)\n");
    let mut total = 0usize;
    for id in BenchId::ALL {
        let mut env = PmemEnv::new(Variant::LogPSf);
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        let mut w = make_workload(id);
        env.set_recording(false);
        w.setup(&mut env, &mut rng, 200);
        env.set_recording(true);
        let base = env.snapshot();

        // Track the acceptable post-recovery states: the key set after
        // each operation prefix.
        let mut states: Vec<BTreeSet<u64>> = Vec::new();
        states.push(
            w.verify(env.space())
                .expect("post-init")
                .keys
                .into_iter()
                .collect(),
        );
        for op in 0..OPS {
            let mut cur = states.last().expect("non-empty").clone();
            match w.run_op(&mut env, &mut rng, op) {
                OpOutcome::Inserted(k) => {
                    cur.insert(k);
                }
                OpOutcome::Deleted(k) => {
                    cur.remove(&k);
                }
                OpOutcome::Swapped(..) | OpOutcome::Noop => {}
            }
            states.push(cur);
        }
        let trace = env.take_trace();
        let layout = env.log_layout();

        let mut survived = 0usize;
        for i in 0..CRASH_POINTS {
            let crash = trace.events.len() * i / (CRASH_POINTS - 1).max(1);
            let sim = CrashSim::new(&base, &trace.events, crash.min(trace.events.len()));
            let mut img = sim.image_guaranteed_only();
            recover(&mut img, &layout);
            let got: BTreeSet<u64> = w
                .verify(&img)
                .unwrap_or_else(|e| panic!("{id}: crash at {crash}: {e}"))
                .keys
                .into_iter()
                .collect();
            assert!(
                states.contains(&got),
                "{id}: recovered state matches no operation prefix (crash at {crash})"
            );
            survived += 1;
        }
        total += survived;
        println!(
            "  {:<3} {:>3}/{} crash points recovered consistently",
            id.abbrev(),
            survived,
            CRASH_POINTS
        );
    }
    println!("\nAll {total} adversarial crashes recovered to prefix-consistent states.");
}
